// Unit tests for the ML substrate: LR model, training operators, metrics,
// FedAvg.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/rng.h"
#include "data/synth_avazu.h"
#include "ml/fedavg.h"
#include "ml/lr_model.h"
#include "ml/metrics.h"
#include "ml/operators.h"

namespace simdc::ml {
namespace {

data::Example MakeExample(std::vector<std::uint32_t> features, float label) {
  data::Example e;
  e.features = std::move(features);
  e.label = label;
  return e;
}

// ---------- LrModel ----------

TEST(LrModelTest, ZeroModelPredictsHalf) {
  LrModel model(16);
  EXPECT_DOUBLE_EQ(model.Predict(MakeExample({1, 2}, 1)), 0.5);
}

TEST(LrModelTest, ScoreSumsActiveWeights) {
  LrModel model(8);
  model.weights()[2] = 1.0f;
  model.weights()[5] = -0.5f;
  model.bias() = 0.25f;
  EXPECT_NEAR(model.Score(MakeExample({2, 5}, 0)), 0.75, 1e-6);
}

TEST(LrModelTest, PredictIsSigmoidOfScore) {
  LrModel model(4);
  model.bias() = 2.0f;
  EXPECT_NEAR(model.Predict(MakeExample({}, 0)), 1.0 / (1.0 + std::exp(-2.0)),
              1e-9);
}

TEST(LrModelTest, SerializationRoundTrip) {
  LrModel model(32);
  model.bias() = 0.125f;
  for (std::uint32_t i = 0; i < 32; ++i) {
    model.weights()[i] = static_cast<float>(i) * 0.25f - 3.0f;
  }
  const auto bytes = model.ToBytes();
  EXPECT_EQ(bytes.size(), model.SerializedSize());
  auto restored = LrModel::FromBytes(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->dim(), 32u);
  EXPECT_EQ(restored->bias(), model.bias());
  EXPECT_NEAR(restored->DistanceTo(model), 0.0, 1e-12);
}

TEST(LrModelTest, FromBytesRejectsGarbage) {
  EXPECT_FALSE(LrModel::FromBytes(std::vector<std::byte>(3)).ok());
  // Truncated payload.
  LrModel model(16);
  auto bytes = model.ToBytes();
  bytes.pop_back();
  EXPECT_FALSE(LrModel::FromBytes(bytes).ok());
}

// ---------- Payload codecs ----------

LrModel RampModel(std::uint32_t dim) {
  LrModel model(dim);
  model.bias() = 0.375f;
  for (std::uint32_t i = 0; i < dim; ++i) {
    model.weights()[i] = static_cast<float>(i) * 0.03125f - 1.0f;
  }
  return model;
}

TEST(LrModelCodecTest, Fp32CodecIsTheHistoricalFormat) {
  const LrModel model = RampModel(24);
  // The default ToBytes, the explicit fp32 codec and EncodeTo all produce
  // the same bytes — the bit-compat contract with pre-codec blobs.
  const auto legacy = model.ToBytes();
  EXPECT_EQ(legacy, model.ToBytes(PayloadCodec::kFp32));
  std::vector<std::byte> scratch(model.EncodedSize(PayloadCodec::kFp32));
  model.EncodeTo(scratch, PayloadCodec::kFp32);
  EXPECT_EQ(legacy, scratch);
  EXPECT_EQ(legacy.size(), model.SerializedSize());
}

TEST(LrModelCodecTest, Fp16RoundTrip) {
  const LrModel model = RampModel(48);
  const auto bytes = model.ToBytes(PayloadCodec::kFp16);
  EXPECT_EQ(bytes.size(), model.EncodedSize(PayloadCodec::kFp16));
  EXPECT_LT(bytes.size(), model.EncodedSize(PayloadCodec::kFp32));
  auto restored = LrModel::FromBytes(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->dim(), 48u);
  EXPECT_EQ(restored->bias(), model.bias());  // bias stays fp32
  for (std::uint32_t i = 0; i < 48; ++i) {
    // RampModel weights are multiples of 2^-5 in [-1, 0.5): exactly
    // representable in half precision, so the round trip is lossless.
    EXPECT_EQ(restored->weights()[i], model.weights()[i]) << i;
  }
}

TEST(LrModelCodecTest, Fp16RoundsToNearestEven) {
  LrModel model(2);
  // In [1, 2) the half-precision step is 2^-10. Both values below sit
  // exactly halfway between representable halves, so round-to-nearest-even
  // picks the even mantissa each time: down to 1.0 (mantissa 0), up to
  // 1 + 2^-9 (mantissa 2).
  model.weights()[0] = 1.0f + std::ldexp(1.0f, -11);
  model.weights()[1] = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  auto restored = LrModel::FromBytes(model.ToBytes(PayloadCodec::kFp16));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->weights()[0], 1.0f);
  EXPECT_EQ(restored->weights()[1], 1.0f + std::ldexp(1.0f, -9));
}

// Encode a single weight through the fp16 codec and return the raw half
// bit pattern (the last two payload bytes of a dim-1 blob).
std::uint16_t EncodeHalf(float w) {
  LrModel model(1);
  model.weights()[0] = w;
  const auto bytes = model.ToBytes(PayloadCodec::kFp16);
  std::uint16_t h = 0;
  std::memcpy(&h, bytes.data() + bytes.size() - sizeof(h), sizeof(h));
  return h;
}

// Decode a raw half bit pattern through the fp16 codec.
float DecodeHalf(std::uint16_t h) {
  LrModel model(1);
  auto bytes = model.ToBytes(PayloadCodec::kFp16);
  std::memcpy(bytes.data() + bytes.size() - sizeof(h), &h, sizeof(h));
  auto restored = LrModel::FromBytes(bytes);
  EXPECT_TRUE(restored.ok());
  return restored->weights()[0];
}

TEST(LrModelCodecTest, Fp16OverflowSaturatesToInfinity) {
  const float inf = std::numeric_limits<float>::infinity();
  // Finite fp32 values beyond the half range must become half infinity
  // with the sign intact — never NaN or a sign flip.
  EXPECT_EQ(DecodeHalf(EncodeHalf(100000.0f)), inf);
  EXPECT_EQ(DecodeHalf(EncodeHalf(131072.0f)), inf);  // 2^17
  EXPECT_EQ(DecodeHalf(EncodeHalf(-100000.0f)), -inf);
  EXPECT_EQ(DecodeHalf(EncodeHalf(3.0e38f)), inf);
  EXPECT_EQ(DecodeHalf(EncodeHalf(inf)), inf);
  EXPECT_EQ(DecodeHalf(EncodeHalf(-inf)), -inf);
  EXPECT_TRUE(std::isnan(DecodeHalf(EncodeHalf(std::nanf("")))));
  // Max finite half survives; the first value that ties toward 2^16
  // rounds up to infinity (ties-to-even picks the even = overflow side).
  EXPECT_EQ(DecodeHalf(EncodeHalf(65504.0f)), 65504.0f);
  EXPECT_EQ(DecodeHalf(EncodeHalf(65519.0f)), 65504.0f);
  EXPECT_EQ(DecodeHalf(EncodeHalf(65520.0f)), inf);
}

TEST(LrModelCodecTest, Fp16SubnormalRoundTrip) {
  // Every subnormal half is mant/2^10 * 2^-14 = mant * 2^-24; those values
  // must round-trip exactly through encode and decode.
  for (std::uint32_t mant : {1u, 2u, 3u, 0x200u, 0x201u, 0x3FFu}) {
    const float value = std::ldexp(static_cast<float>(mant), -24);
    EXPECT_EQ(DecodeHalf(static_cast<std::uint16_t>(mant)), value) << mant;
    EXPECT_EQ(EncodeHalf(value), mant) << mant;
    EXPECT_EQ(EncodeHalf(-value),
              static_cast<std::uint16_t>(0x8000u | mant)) << mant;
  }
  // 2^-15 (pattern 0x0200) decoded at full value, not half of it.
  EXPECT_EQ(DecodeHalf(0x0200), std::ldexp(1.0f, -15));
  // Underflow boundary: below 2^-25 flushes to zero, the 2^-25 tie goes
  // to even (zero), and anything past the tie rounds up to 2^-24.
  EXPECT_EQ(EncodeHalf(std::ldexp(1.0f, -26)), 0u);
  EXPECT_EQ(EncodeHalf(std::ldexp(1.0f, -25)), 0u);
  EXPECT_EQ(EncodeHalf(std::ldexp(1.5f, -25)), 1u);
  // Smallest normal half boundary from both sides.
  EXPECT_EQ(DecodeHalf(0x0400), std::ldexp(1.0f, -14));
  EXPECT_EQ(EncodeHalf(std::ldexp(1.0f, -14)), 0x0400u);
}

#if defined(__FLT16_MAX__)
// With a native _Float16 available, check the codec against the hardware /
// soft-float reference over every half bit pattern (decode) and over the
// decoded set re-encoded (encode), so the two directions agree bit-for-bit
// with IEEE 754 round-to-nearest-even.
TEST(LrModelCodecTest, Fp16MatchesNativeReferenceExhaustively) {
  const std::uint32_t n = 1u << 16;
  LrModel model(n);
  auto bytes = model.ToBytes(PayloadCodec::kFp16);
  std::byte* payload = bytes.data() + (bytes.size() - n * sizeof(std::uint16_t));
  for (std::uint32_t h = 0; h < n; ++h) {
    const auto v = static_cast<std::uint16_t>(h);
    std::memcpy(payload + h * sizeof(v), &v, sizeof(v));
  }
  auto restored = LrModel::FromBytes(bytes);
  ASSERT_TRUE(restored.ok());
  for (std::uint32_t h = 0; h < n; ++h) {
    const auto v = static_cast<std::uint16_t>(h);
    _Float16 ref;
    std::memcpy(&ref, &v, sizeof(v));
    const float expect = static_cast<float>(ref);
    const float got = restored->weights()[h];
    if (std::isnan(expect)) {
      ASSERT_TRUE(std::isnan(got)) << "pattern " << h;
      continue;
    }
    ASSERT_EQ(std::bit_cast<std::uint32_t>(got),
              std::bit_cast<std::uint32_t>(expect))
        << "pattern " << h;
    // Decoded halves are exactly representable, so re-encoding must be the
    // identity on the bit pattern.
    ASSERT_EQ(EncodeHalf(expect), v) << "pattern " << h;
  }
  // Encode direction on values that are NOT exact halves: a deterministic
  // strided sweep of fp32 bit patterns against the native cast.
  for (std::uint32_t bits = 0; bits < 0xFF000000u; bits += 0x000F4243u) {
    const float f = std::bit_cast<float>(bits);
    const auto got = EncodeHalf(f);
    if (std::isnan(f)) {
      // The codec canonicalizes NaN payloads; only NaN-ness must survive.
      ASSERT_TRUE((got & 0x7C00u) == 0x7C00u && (got & 0x03FFu) != 0)
          << "fp32 bits " << bits;
      continue;
    }
    const auto want = std::bit_cast<std::uint16_t>(static_cast<_Float16>(f));
    ASSERT_EQ(got, want) << "fp32 bits " << bits;
  }
}
#endif

TEST(LrModelCodecTest, Int8NonFiniteWeightsEncodeSafely) {
  LrModel model(4);
  model.weights()[0] = std::nanf("");
  model.weights()[1] = std::numeric_limits<float>::infinity();
  model.weights()[2] = -std::numeric_limits<float>::infinity();
  model.weights()[3] = 0.5f;
  auto restored = LrModel::FromBytes(model.ToBytes(PayloadCodec::kInt8));
  ASSERT_TRUE(restored.ok());
  // NaN maps to zero, infinities saturate, and the finite weight sets the
  // scale (so it survives at full precision) instead of being crushed by inf.
  EXPECT_EQ(restored->weights()[0], 0.0f);
  EXPECT_NEAR(restored->weights()[1], 0.5f, 1e-6);   // +127 * (0.5/127)
  EXPECT_NEAR(restored->weights()[2], -0.5f, 1e-6);  // -127 * (0.5/127)
  EXPECT_NEAR(restored->weights()[3], 0.5f, 1e-6);
}

TEST(LrModelCodecTest, Int8RoundTrip) {
  const LrModel model = RampModel(64);
  const auto bytes = model.ToBytes(PayloadCodec::kInt8);
  EXPECT_EQ(bytes.size(), model.EncodedSize(PayloadCodec::kInt8));
  auto restored = LrModel::FromBytes(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->dim(), 64u);
  EXPECT_EQ(restored->bias(), model.bias());
  // Symmetric per-tensor quantization: error bounded by half a step.
  float max_abs = 0.0f;
  for (float w : model.weights()) max_abs = std::max(max_abs, std::abs(w));
  const float step = max_abs / 127.0f;
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(restored->weights()[i], model.weights()[i], step / 2 + 1e-7)
        << i;
  }
  // The extreme weight hits quantization level ±127 and survives exactly.
  EXPECT_NEAR(restored->weights()[0], -1.0f, 1e-6);
}

TEST(LrModelCodecTest, Int8AllZeroWeightsUsesZeroScale) {
  LrModel model(8);
  model.bias() = 2.5f;
  auto restored = LrModel::FromBytes(model.ToBytes(PayloadCodec::kInt8));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->bias(), 2.5f);
  for (float w : restored->weights()) EXPECT_EQ(w, 0.0f);
}

TEST(LrModelCodecTest, FromBytesSharedMatchesFromBytes) {
  const LrModel model = RampModel(32);
  for (const auto codec :
       {PayloadCodec::kFp32, PayloadCodec::kFp16, PayloadCodec::kInt8}) {
    const auto bytes = model.ToBytes(codec);
    auto eager = LrModel::FromBytes(bytes);
    auto shared = LrModel::FromBytesShared(bytes);
    ASSERT_TRUE(eager.ok()) << ToString(codec);
    ASSERT_TRUE(shared.ok()) << ToString(codec);
    EXPECT_EQ((*shared)->bias(), eager->bias());
    for (std::uint32_t i = 0; i < 32; ++i) {
      EXPECT_EQ((*shared)->weights()[i], eager->weights()[i]);
    }
  }
}

TEST(LrModelCodecTest, QuantizedBlobValidation) {
  const LrModel model = RampModel(16);
  for (const auto codec : {PayloadCodec::kFp16, PayloadCodec::kInt8}) {
    auto bytes = model.ToBytes(codec);
    auto truncated = bytes;
    truncated.pop_back();
    EXPECT_FALSE(LrModel::FromBytes(truncated).ok()) << ToString(codec);
    auto padded = bytes;
    padded.push_back(std::byte{0});
    EXPECT_FALSE(LrModel::FromBytes(padded).ok()) << ToString(codec);
  }
  // Header alone (no payload) is rejected, not read out of bounds.
  auto header_only = model.ToBytes(PayloadCodec::kFp16);
  header_only.resize(3 * sizeof(std::uint32_t) + sizeof(float));
  EXPECT_FALSE(LrModel::FromBytes(header_only).ok());
  // An unknown codec tag inside a valid magic header is rejected.
  auto bad_tag = model.ToBytes(PayloadCodec::kFp16);
  const std::uint32_t unknown = 99;
  std::memcpy(bad_tag.data() + sizeof(std::uint32_t), &unknown,
              sizeof(unknown));
  EXPECT_FALSE(LrModel::FromBytes(bad_tag).ok());
}

TEST(LrModelCodecTest, EncodedSizeRatiosAtScale) {
  // The million-device ladder's wire-size contract (int8 >= 3.9x, fp16 >=
  // 1.9x smaller than fp32) holds from dim 1024 up.
  const LrModel model(1024);
  const double fp32 =
      static_cast<double>(model.EncodedSize(PayloadCodec::kFp32));
  EXPECT_GE(fp32 / model.EncodedSize(PayloadCodec::kInt8), 3.9);
  EXPECT_GE(fp32 / model.EncodedSize(PayloadCodec::kFp16), 1.9);
}

#ifndef NDEBUG
TEST(LrModelTest, ScoreBoundsCheckFiresInDebug) {
  LrModel model(4);
  EXPECT_THROW((void)model.Score(MakeExample({7}, 0)), std::invalid_argument);
}
#endif

TEST(LrModelTest, DistanceToSelfIsZeroAndSymmetric) {
  LrModel a(8), b(8);
  a.weights()[3] = 1.0f;
  b.weights()[3] = 4.0f;
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), b.DistanceTo(a));
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 3.0);
}

TEST(LrModelTest, DimensionMismatchChecks) {
  LrModel a(8), b(4);
  EXPECT_THROW((void)a.DistanceTo(b), std::invalid_argument);
}

// ---------- Operators ----------

class OperatorTest : public ::testing::TestWithParam<OperatorVenue> {};

TEST_P(OperatorTest, SgdReducesLogLoss) {
  data::SynthConfig config;
  config.num_devices = 1;
  config.records_per_device_mean = 400;
  config.hash_dim = 1u << 12;
  config.seed = 3;
  const auto dataset = data::GenerateSyntheticAvazu(config);
  const auto& shard = dataset.devices[0].examples;

  LrModel model(config.hash_dim);
  const double before = LogLoss(model, shard);
  const auto op = MakeLrOperator(GetParam());
  TrainConfig train;
  train.learning_rate = 0.05;
  train.epochs = 10;
  op->Train(model, shard, train);
  const double after = LogLoss(model, shard);
  EXPECT_LT(after, before - 0.01);
}

TEST_P(OperatorTest, EmptyShardIsNoop) {
  LrModel model(64);
  const auto op = MakeLrOperator(GetParam());
  op->Train(model, {}, TrainConfig{});
  LrModel zero(64);
  EXPECT_DOUBLE_EQ(model.DistanceTo(zero), 0.0);
}

TEST_P(OperatorTest, DeterministicGivenSeed) {
  data::SynthConfig config;
  config.num_devices = 1;
  config.hash_dim = 1u << 12;
  config.records_per_device_mean = 100;
  const auto dataset = data::GenerateSyntheticAvazu(config);
  const auto op = MakeLrOperator(GetParam());
  TrainConfig train;
  train.shuffle_seed = 77;
  LrModel a(config.hash_dim), b(config.hash_dim);
  op->Train(a, dataset.devices[0].examples, train);
  op->Train(b, dataset.devices[0].examples, train);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Venues, OperatorTest,
                         ::testing::Values(OperatorVenue::kServer,
                                           OperatorVenue::kMobile),
                         [](const auto& info) {
                           return info.param == OperatorVenue::kServer
                                      ? "Server"
                                      : "Mobile";
                         });

TEST(OperatorDivergenceTest, KernelsAreCloseButNotIdentical) {
  // §VI-B2: the PyMNN-like and MNN-like kernels must produce *slightly*
  // different numerics (different precision / traversal) while remaining
  // statistically equivalent — that is the premise of Fig. 6.
  data::SynthConfig config;
  config.num_devices = 1;
  config.records_per_device_mean = 300;
  config.hash_dim = 1u << 12;
  const auto dataset = data::GenerateSyntheticAvazu(config);
  const auto& shard = dataset.devices[0].examples;

  TrainConfig train;
  train.learning_rate = 1e-2;
  train.epochs = 10;
  train.shuffle_seed = 5;
  LrModel server_model(config.hash_dim), mobile_model(config.hash_dim);
  ServerLrOperator().Train(server_model, shard, train);
  MobileLrOperator().Train(mobile_model, shard, train);

  const double distance = server_model.DistanceTo(mobile_model);
  EXPECT_GT(distance, 0.0);      // numerically distinct
  EXPECT_LT(distance, 0.5);      // but equivalent in effect
  const double acc_server = Accuracy(server_model, shard);
  const double acc_mobile = Accuracy(mobile_model, shard);
  EXPECT_NEAR(acc_server, acc_mobile, 0.02);
}

TEST(OperatorNamesTest, Distinct) {
  EXPECT_NE(ServerLrOperator().name(), MobileLrOperator().name());
}

// ---------- Metrics ----------

TEST(MetricsTest, AccuracyOnSeparableData) {
  LrModel model(4);
  model.weights()[0] = 5.0f;
  model.weights()[1] = -5.0f;
  std::vector<data::Example> examples = {
      MakeExample({0}, 1), MakeExample({1}, 0), MakeExample({0}, 1),
      MakeExample({1}, 1)};  // last one misclassified
  EXPECT_DOUBLE_EQ(Accuracy(model, examples), 0.75);
}

TEST(MetricsTest, AccuracyEmptyIsZero) {
  LrModel model(4);
  EXPECT_DOUBLE_EQ(Accuracy(model, {}), 0.0);
}

TEST(MetricsTest, LogLossOfZeroModelIsLn2) {
  LrModel model(4);
  std::vector<data::Example> examples = {MakeExample({0}, 1),
                                         MakeExample({1}, 0)};
  EXPECT_NEAR(LogLoss(model, examples), std::log(2.0), 1e-9);
}

TEST(MetricsTest, AucPerfectRanking) {
  LrModel model(4);
  model.weights()[0] = 3.0f;
  std::vector<data::Example> examples = {
      MakeExample({0}, 1), MakeExample({0}, 1), MakeExample({1}, 0),
      MakeExample({2}, 0)};
  EXPECT_DOUBLE_EQ(Auc(model, examples), 1.0);
}

TEST(MetricsTest, AucRandomScoresNearHalf) {
  LrModel model(4);  // all-zero: every score ties → AUC 0.5 by convention
  std::vector<data::Example> examples;
  for (int i = 0; i < 100; ++i) {
    examples.push_back(MakeExample({static_cast<std::uint32_t>(i % 4)},
                                   i % 3 == 0 ? 1.0f : 0.0f));
  }
  EXPECT_NEAR(Auc(model, examples), 0.5, 1e-9);
}

TEST(MetricsTest, AucSingleClassIsHalf) {
  LrModel model(4);
  std::vector<data::Example> examples = {MakeExample({0}, 1),
                                         MakeExample({1}, 1)};
  EXPECT_DOUBLE_EQ(Auc(model, examples), 0.5);
}

TEST(MetricsTest, EvaluateBundlesAll) {
  LrModel model(4);
  std::vector<data::Example> examples = {MakeExample({0}, 1),
                                         MakeExample({1}, 0)};
  const auto report = Evaluate(model, examples);
  EXPECT_EQ(report.examples, 2u);
  EXPECT_NEAR(report.logloss, std::log(2.0), 1e-9);
}

TEST(MetricsTest, SinglePassEvaluateMatchesIndividualMetrics) {
  // Evaluate scores each example once and derives all three metrics from
  // that pass; it must agree exactly with the three standalone functions.
  LrModel model(16);
  Rng rng(99);
  for (auto& w : model.weights()) {
    w = static_cast<float>(rng.Normal(0.0, 0.7));
  }
  model.bias() = 0.2f;
  std::vector<data::Example> examples;
  for (int i = 0; i < 200; ++i) {
    examples.push_back(MakeExample(
        {static_cast<std::uint32_t>(rng.UniformInt(0, 15)),
         static_cast<std::uint32_t>(rng.UniformInt(0, 15))},
        rng.Bernoulli(0.4) ? 1 : 0));
  }
  const auto report = Evaluate(model, examples);
  EXPECT_DOUBLE_EQ(report.accuracy, Accuracy(model, examples));
  EXPECT_DOUBLE_EQ(report.logloss, LogLoss(model, examples));
  EXPECT_DOUBLE_EQ(report.auc, Auc(model, examples));
}

TEST(MetricsTest, EvaluateDegenerateInputs) {
  LrModel model(4);
  const auto empty = Evaluate(model, {});
  EXPECT_EQ(empty.examples, 0u);
  EXPECT_DOUBLE_EQ(empty.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(empty.logloss, 0.0);
  EXPECT_DOUBLE_EQ(empty.auc, 0.5);

  // Single-class pools skip the rank computation but keep the rest.
  std::vector<data::Example> positives = {MakeExample({0}, 1),
                                          MakeExample({1}, 1)};
  const auto report = Evaluate(model, positives);
  EXPECT_DOUBLE_EQ(report.auc, 0.5);
  EXPECT_DOUBLE_EQ(report.accuracy, Accuracy(model, positives));
  EXPECT_NEAR(report.logloss, std::log(2.0), 1e-9);
}

/// Runs `body` once per AUC rank path (comparison sort, radix) and
/// restores the threshold afterwards.
template <typename Body>
void ForEachAucRankPath(Body body) {
  const std::size_t saved = GetAucRadixThreshold();
  SetAucRadixThreshold(std::numeric_limits<std::size_t>::max());
  body();
  SetAucRadixThreshold(0);
  body();
  SetAucRadixThreshold(saved);
}

TEST(MetricsTest, RadixAucBitIdenticalToComparisonSort) {
  // The radix rank path must be EXACT — same bits as the pair-sort, not
  // an approximation — on data with heavy score ties (small feature
  // space), negative scores and both labels.
  LrModel model(32);
  Rng rng(2024);
  for (auto& w : model.weights()) {
    w = static_cast<float>(rng.Normal(0.0, 1.5));
  }
  model.bias() = -0.3f;
  std::vector<data::Example> examples;
  for (int i = 0; i < 3000; ++i) {
    examples.push_back(MakeExample(
        {static_cast<std::uint32_t>(rng.UniformInt(0, 31)),
         static_cast<std::uint32_t>(rng.UniformInt(0, 31))},
        rng.Bernoulli(0.3) ? 1 : 0));
  }
  std::vector<double> auc_by_path;
  std::vector<double> eval_auc_by_path;
  ForEachAucRankPath([&] {
    auc_by_path.push_back(Auc(model, examples));
    eval_auc_by_path.push_back(Evaluate(model, examples).auc);
  });
  ASSERT_EQ(auc_by_path.size(), 2u);
  EXPECT_EQ(auc_by_path[0], auc_by_path[1]);            // bit-identical
  EXPECT_EQ(eval_auc_by_path[0], eval_auc_by_path[1]);  // bit-identical
  EXPECT_EQ(auc_by_path[0], eval_auc_by_path[0]);
  EXPECT_GT(auc_by_path[0], 0.0);
  EXPECT_LT(auc_by_path[0], 1.0);
}

TEST(MetricsTest, RadixAucExactOnAllTiesAndExtremes) {
  // Degenerate shapes both paths must agree on: every score identical
  // (one giant tie group) and a perfectly separated set.
  LrModel tie_model(4);  // all-zero: every score ties
  std::vector<data::Example> tied;
  for (int i = 0; i < 64; ++i) {
    tied.push_back(MakeExample({static_cast<std::uint32_t>(i % 4)},
                               i % 2 == 0 ? 1.0f : 0.0f));
  }
  LrModel split_model(4);
  split_model.weights()[0] = 7.0f;
  std::vector<data::Example> separable;
  for (int i = 0; i < 64; ++i) {
    const bool positive = i % 2 == 0;
    separable.push_back(
        MakeExample({positive ? 0u : 1u}, positive ? 1.0f : 0.0f));
  }
  ForEachAucRankPath([&] {
    EXPECT_NEAR(Auc(tie_model, tied), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(Auc(split_model, separable), 1.0);
  });
}

// ---------- FedAvg ----------

TEST(FedAvgTest, WeightedAverageBySamples) {
  LrModel a(4), b(4);
  a.weights()[0] = 1.0f;
  a.bias() = 1.0f;
  b.weights()[0] = 4.0f;
  b.bias() = -2.0f;
  FedAvgAggregator agg(4);
  ASSERT_TRUE(agg.Add(a, 1).ok());
  ASSERT_TRUE(agg.Add(b, 3).ok());
  auto avg = agg.Aggregate();
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->weights()[0], (1.0 * 1 + 4.0 * 3) / 4.0, 1e-6);
  EXPECT_NEAR(avg->bias(), (1.0 * 1 - 2.0 * 3) / 4.0, 1e-6);
  EXPECT_EQ(agg.clients(), 2u);
  EXPECT_EQ(agg.total_samples(), 4u);
}

TEST(FedAvgTest, SingleClientIsIdentity) {
  LrModel a(8);
  a.weights()[5] = 2.5f;
  FedAvgAggregator agg(8);
  ASSERT_TRUE(agg.Add(a, 10).ok());
  auto avg = agg.Aggregate();
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->DistanceTo(a), 0.0, 1e-6);
}

TEST(FedAvgTest, RejectsMismatchedDimAndZeroSamples) {
  FedAvgAggregator agg(8);
  EXPECT_FALSE(agg.Add(LrModel(4), 1).ok());
  EXPECT_FALSE(agg.Add(LrModel(8), 0).ok());
}

TEST(FedAvgTest, AggregateWithoutUpdatesFails) {
  FedAvgAggregator agg(8);
  EXPECT_FALSE(agg.Aggregate().ok());
}

TEST(FedAvgTest, ResetClears) {
  FedAvgAggregator agg(4);
  LrModel a(4);
  a.weights()[0] = 8.0f;
  ASSERT_TRUE(agg.Add(a, 2).ok());
  agg.Reset();
  EXPECT_EQ(agg.clients(), 0u);
  EXPECT_FALSE(agg.Aggregate().ok());
  LrModel b(4);
  b.weights()[0] = 2.0f;
  ASSERT_TRUE(agg.Add(b, 1).ok());
  auto avg = agg.Aggregate();
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->weights()[0], 2.0, 1e-6);  // no leakage from before reset
}

TEST(FedAvgTest, OneShotHelperMatchesAggregator) {
  std::vector<ClientUpdate> updates;
  for (int i = 0; i < 3; ++i) {
    ClientUpdate u{LrModel(4), static_cast<std::size_t>(i + 1),
                   static_cast<std::uint64_t>(i)};
    u.model.weights()[0] = static_cast<float>(i);
    updates.push_back(std::move(u));
  }
  auto result = FedAvg(updates);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->weights()[0], (0 * 1 + 1 * 2 + 2 * 3) / 6.0, 1e-6);
  EXPECT_FALSE(FedAvg({}).ok());
}

TEST(FedAvgTest, AverageOfIdenticalModelsIsUnchanged) {
  LrModel m(16);
  for (std::uint32_t i = 0; i < 16; ++i) m.weights()[i] = 0.5f - 0.05f * i;
  FedAvgAggregator agg(16);
  for (int k = 0; k < 5; ++k) ASSERT_TRUE(agg.Add(m, 7).ok());
  auto avg = agg.Aggregate();
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->DistanceTo(m), 0.0, 1e-5);
}

TEST(FedAvgTest, OneShotRejectsZeroSamplesAndDimMismatch) {
  // The one-shot helper surfaces the per-update validation errors.
  std::vector<ClientUpdate> zero_samples;
  zero_samples.push_back({LrModel(4), 0, 1});
  EXPECT_FALSE(FedAvg(zero_samples).ok());

  std::vector<ClientUpdate> mismatched;
  mismatched.push_back({LrModel(4), 2, 1});
  mismatched.push_back({LrModel(8), 2, 2});
  EXPECT_FALSE(FedAvg(mismatched).ok());
}

// Adversarial mix of magnitudes and sample weights for the invariance
// tests: large cancelling values next to tiny ones is the worst case for a
// reordered floating-point sum.
std::vector<ClientUpdate> AdversarialUpdates(std::size_t count,
                                             std::uint32_t dim,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientUpdate> updates;
  for (std::size_t k = 0; k < count; ++k) {
    ClientUpdate u{LrModel(dim), 1 + static_cast<std::size_t>(rng() % 997),
                   static_cast<std::uint64_t>(k)};
    for (std::uint32_t i = 0; i < dim; ++i) {
      const double magnitude = std::pow(10.0, static_cast<double>(
                                                  rng() % 13) -
                                                  6.0);
      const double sign = (rng() & 1) ? 1.0 : -1.0;
      u.model.weights()[i] = static_cast<float>(sign * magnitude);
    }
    u.model.bias() = static_cast<float>(static_cast<double>(rng() % 2000) -
                                        1000.0);
    updates.push_back(std::move(u));
  }
  return updates;
}

std::vector<float> AggregateBits(const LrModel& model) {
  std::vector<float> bits(model.weights().begin(), model.weights().end());
  bits.push_back(model.bias());
  return bits;
}

TEST(FedAvgTest, AggregateIsOrderInvariantUnderShuffle) {
  // Bit-identical published models no matter the Add order: the cascade's
  // invariance window (~2^-99 relative) sits far below the final
  // double->float rounding. 20 adversarial shuffles, dim 64, 160 updates.
  auto updates = AdversarialUpdates(160, 64, 0xF00D);
  FedAvgAggregator reference(64);
  for (const auto& u : updates) {
    ASSERT_TRUE(reference.Add(u.model, u.sample_count).ok());
  }
  auto ref_model = reference.Aggregate();
  ASSERT_TRUE(ref_model.ok());
  const auto ref_bits = AggregateBits(*ref_model);

  Rng rng(0xBEEF);
  for (int trial = 0; trial < 20; ++trial) {
    rng.Shuffle(updates);
    FedAvgAggregator shuffled(64);
    for (const auto& u : updates) {
      ASSERT_TRUE(shuffled.Add(u.model, u.sample_count).ok());
    }
    auto model = shuffled.Aggregate();
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(AggregateBits(*model), ref_bits) << "shuffle trial " << trial;
  }
}

TEST(FedAvgTest, MergeFromMatchesSerialBitForBit) {
  // Shard-split invariance: partition the updates into k partial
  // aggregators, merge ascending, compare to the flat serial sum — the
  // exact reduction the partial-sum plane runs. Every split width the
  // plane supports plus an uneven one.
  const auto updates = AdversarialUpdates(96, 32, 0xCAFE);
  FedAvgAggregator reference(32);
  for (const auto& u : updates) {
    ASSERT_TRUE(reference.Add(u.model, u.sample_count).ok());
  }
  auto ref_model = reference.Aggregate();
  ASSERT_TRUE(ref_model.ok());
  const auto ref_bits = AggregateBits(*ref_model);

  for (const std::size_t shards : {2u, 3u, 4u, 8u}) {
    std::vector<FedAvgAggregator> partials;
    for (std::size_t s = 0; s < shards; ++s) partials.emplace_back(32);
    for (std::size_t k = 0; k < updates.size(); ++k) {
      ASSERT_TRUE(partials[k % shards]
                      .Add(updates[k].model, updates[k].sample_count)
                      .ok());
    }
    FedAvgAggregator merged(32);
    for (const auto& partial : partials) merged.MergeFrom(partial);
    EXPECT_EQ(merged.clients(), reference.clients());
    EXPECT_EQ(merged.total_samples(), reference.total_samples());
    auto model = merged.Aggregate();
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(AggregateBits(*model), ref_bits) << shards << " shards";
  }
}

TEST(FedAvgTest, RestoreRoundTripsCascadeStateBitExactly) {
  // The checkpoint seam: accessor -> Restore must reproduce the aggregator
  // exactly, including both compensation planes, so a recovered run
  // publishes the same bits.
  const auto updates = AdversarialUpdates(40, 16, 0xD00F);
  FedAvgAggregator original(16);
  for (const auto& u : updates) {
    ASSERT_TRUE(original.Add(u.model, u.sample_count).ok());
  }

  FedAvgAggregator restored(16);
  restored.Restore(original.accumulator(), original.compensation1(),
                   original.compensation2(), original.bias_accumulator(),
                   original.bias_compensation1(),
                   original.bias_compensation2(), original.total_samples(),
                   original.clients());
  EXPECT_EQ(restored.clients(), original.clients());
  EXPECT_EQ(restored.total_samples(), original.total_samples());

  // Keep adding to both after the restore: identical trajectories.
  const auto more = AdversarialUpdates(17, 16, 0xFEED);
  FedAvgAggregator cont = std::move(restored);
  for (const auto& u : more) {
    ASSERT_TRUE(original.Add(u.model, u.sample_count).ok());
    ASSERT_TRUE(cont.Add(u.model, u.sample_count).ok());
  }
  auto a = original.Aggregate();
  auto b = cont.Aggregate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(AggregateBits(*a), AggregateBits(*b));

  // Reset drops everything, including the restored planes.
  cont.Reset();
  EXPECT_EQ(cont.clients(), 0u);
  EXPECT_EQ(cont.total_samples(), 0u);
  EXPECT_FALSE(cont.Aggregate().ok());
  for (const double v : cont.accumulator()) EXPECT_EQ(v, 0.0);
  for (const double v : cont.compensation1()) EXPECT_EQ(v, 0.0);
  for (const double v : cont.compensation2()) EXPECT_EQ(v, 0.0);
}

TEST(FedAvgKernelTest, RestrictKernelMatchesScalarReferenceBitForBit) {
  // fedavg_add_simd (CascadeAdd) vs fedavg_add_scalar (CascadeAddScalar):
  // same cascade, different loop qualification — every output bit equal.
  Rng rng(0xAB5E);
  const std::size_t n = 1024;
  std::vector<float> weights(n);
  for (auto& w : weights) {
    w = static_cast<float>(static_cast<double>(rng() % 100000) / 7.0 -
                           7000.0);
  }
  std::vector<double> sum_a(n, 0.0), c1_a(n, 0.0), c2_a(n, 0.0);
  std::vector<double> sum_b(n, 0.0), c1_b(n, 0.0), c2_b(n, 0.0);
  for (int pass = 0; pass < 5; ++pass) {
    const double scale = static_cast<double>(1 + rng() % 997);
    kernels::CascadeAddScalar(weights, scale, sum_a, c1_a, c2_a);
    kernels::CascadeAdd(weights.data(), n, scale, sum_b.data(), c1_b.data(),
                        c2_b.data());
    EXPECT_EQ(sum_a, sum_b) << "pass " << pass;
    EXPECT_EQ(c1_a, c1_b) << "pass " << pass;
    EXPECT_EQ(c2_a, c2_b) << "pass " << pass;
  }
}

TEST(FedAvgKernelTest, CascadeTracksExactSumOfCancellingTerms) {
  // 1e16 and ±1 terms: a naive double sum loses the ±1s entirely; the
  // cascade's represented value keeps them.
  std::vector<double> sum(1, 0.0), c1(1, 0.0), c2(1, 0.0);
  std::vector<float> big{1.0f};
  kernels::CascadeAddScalar(big, 1e16, sum, c1, c2);
  for (int i = 0; i < 1000; ++i) {
    kernels::CascadeAddScalar(big, 1.0, sum, c1, c2);
  }
  kernels::CascadeAddScalar(big, -1e16, sum, c1, c2);
  EXPECT_EQ(kernels::CascadeValue(sum[0], c1[0], c2[0]), 1000.0);
}

}  // namespace
}  // namespace simdc::ml
