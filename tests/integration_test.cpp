// Cross-module integration tests: the full measurement pipeline
// (phones → ADB → parsers → cloud DB → Table-I-style aggregates), the
// full traffic pipeline (training → DeviceFlow curves → aggregation), and
// the paper's headline claims at reduced scale.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/database.h"
#include "common/stats.h"
#include "core/fl_engine.h"
#include "core/platform.h"
#include "data/synth_avazu.h"
#include "flow/rate_functions.h"

namespace simdc {
namespace {

using core::FlExperimentConfig;
using core::Platform;

// ---------- Table I pipeline at reduced scale ----------

TEST(IntegrationTest, BenchmarkingPipelineReproducesTableIShape) {
  Platform platform;
  sched::TaskSpec task;
  task.rounds = 1;
  for (const auto grade :
       {device::DeviceGrade::kHigh, device::DeviceGrade::kLow}) {
    sched::DeviceRequirement requirement;
    requirement.grade = grade;
    requirement.num_devices = 20;
    requirement.benchmarking_phones = 2;
    requirement.logical_bundles = grade == device::DeviceGrade::kHigh ? 80 : 40;
    requirement.phones = 3;
    task.requirements.push_back(requirement);
  }
  ASSERT_TRUE(platform.SubmitTask(task).ok());
  core::ExecOptions options;
  options.sample_period = Seconds(1.0);
  const auto reports = platform.RunQueuedTasks(options);
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_TRUE(reports[0].ok);

  // Aggregate per grade: High in requirement 0, Low in requirement 1.
  const auto high = platform.metrics().AverageStages(
      reports[0].id, reports[0].benchmarking[0]);
  const auto low = platform.metrics().AverageStages(
      reports[0].id, reports[0].benchmarking[1]);
  ASSERT_GE(high.size(), 4u);
  ASSERT_GE(low.size(), 4u);

  auto energy_of = [](const std::vector<cloud::StageAggregate>& stages,
                      device::ApkStage stage) {
    for (const auto& s : stages) {
      if (s.stage == stage) return s.energy_mah;
    }
    return -1.0;
  };
  // Table I's headline: Low-grade devices burn several times more energy
  // in every stage, and training shows real communication volume.
  for (const auto stage :
       {device::ApkStage::kApkLaunch, device::ApkStage::kTraining,
        device::ApkStage::kPostTraining}) {
    const double high_e = energy_of(high, stage);
    const double low_e = energy_of(low, stage);
    ASSERT_GT(high_e, 0.0);
    ASSERT_GT(low_e, 0.0);
    EXPECT_GT(low_e, 2.0 * high_e) << "stage " << static_cast<int>(stage);
  }
  for (const auto& stages : {high, low}) {
    double training_comm = 0.0;
    for (const auto& s : stages) {
      if (s.stage == device::ApkStage::kTraining) training_comm = s.comm_kb;
    }
    EXPECT_GT(training_comm, 20.0);  // ≈33 KB in the paper
  }
}

// ---------- Fig. 9 mechanism: traffic curve σ changes aggregation ----------

TEST(IntegrationTest, SmallerSigmaAggregatesFasterUnderThreshold) {
  data::SynthConfig data_config;
  data_config.num_devices = 200;
  data_config.records_per_device_mean = 12;
  data_config.hash_dim = 1u << 12;
  data_config.seed = 3;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  auto first_round_time = [&](double sigma) {
    sim::EventLoop loop;
    FlExperimentConfig config;
    config.rounds = 1;
    config.train.epochs = 1;
    config.trigger = cloud::AggregationTrigger::kSampleThreshold;
    config.sample_threshold =
        static_cast<std::size_t>(0.6 * static_cast<double>(dataset.TotalExamples()));
    config.compute_seconds = 1.0;
    // Right-tailed normal delays scaled to minutes (Fig. 9 construction);
    // faster (higher-CTR) devices get the small quantiles.
    config.delay_fn = [sigma](const data::DeviceData& device, std::size_t,
                              Rng& rng) {
      (void)device;
      return Minutes(std::abs(rng.Normal(0.0, sigma)));
    };
    core::FlEngine engine(loop, dataset, config);
    const auto result = engine.Run();
    EXPECT_EQ(result.rounds.size(), 1u);
    return result.rounds.empty() ? SimTime(0) : result.rounds[0].time;
  };

  const SimTime t1 = first_round_time(1.0);
  const SimTime t2 = first_round_time(2.0);
  const SimTime t3 = first_round_time(3.0);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

// ---------- Fig. 11 mechanism: dropout × data distribution ----------

TEST(IntegrationTest, DropoutHurtsOnlyNonIid) {
  data::SynthConfig data_config;
  data_config.num_devices = 200;
  data_config.records_per_device_mean = 25;
  data_config.hash_dim = 1u << 12;
  data_config.distribution = data::LabelDistribution::kPolarized;
  data_config.seed = 9;
  const auto noniid = data::GenerateSyntheticAvazu(data_config);
  const auto iid = data::RepartitionIid(noniid, 17);

  auto run = [](const data::FederatedDataset& dataset, double dropout) {
    sim::EventLoop loop;
    FlExperimentConfig config;
    config.rounds = 10;
    config.train.epochs = 4;
    config.train.learning_rate = 0.1;
    config.trigger = cloud::AggregationTrigger::kScheduled;
    config.schedule_period = Seconds(30.0);
    config.strategy = flow::RealtimeAccumulated{{1}, dropout};
    config.seed = 11;
    core::FlEngine engine(loop, dataset, config);
    return engine.Run();
  };
  auto final_accuracy = [](const core::FlRunResult& result) {
    return result.rounds.back().test_accuracy;
  };
  // Round-to-round volatility over the convergence phase — the paper's
  // Fig. 11b observation is that dropout makes non-IID convergence
  // "increasingly unstable".
  auto volatility = [](const core::FlRunResult& result) {
    RunningStats deltas;
    for (std::size_t i = 4; i < result.rounds.size(); ++i) {
      deltas.Add(std::abs(result.rounds[i].test_accuracy -
                          result.rounds[i - 1].test_accuracy));
    }
    return deltas.mean();
  };

  // IID: dropout barely matters (Fig. 11a).
  const auto iid_clean = run(iid, 0.0);
  const auto iid_dropped = run(iid, 0.7);
  EXPECT_NEAR(final_accuracy(iid_clean), final_accuracy(iid_dropped), 0.06);

  // Non-IID: heavy dropout destabilizes convergence (Fig. 11b).
  const auto noniid_clean = run(noniid, 0.0);
  const auto noniid_dropped = run(noniid, 0.9);
  EXPECT_GT(volatility(noniid_dropped), 1.5 * volatility(noniid_clean));
  // And IID stays stable even when dropped.
  EXPECT_LT(volatility(iid_dropped), volatility(noniid_dropped));
}

// ---------- Fig. 10 / Table II: full interval-dispatch chain ----------

TEST(IntegrationTest, IntervalDispatchTracksCurveThroughFullStack) {
  sim::EventLoop loop;
  flow::DeviceFlow device_flow(loop);

  struct CountingEndpoint final : flow::CloudEndpoint {
    std::vector<std::pair<SimTime, std::size_t>> arrivals;
    void Deliver(const flow::Message&, SimTime arrival) override {
      if (!arrivals.empty() &&
          arrivals.back().first / Seconds(1.0) == arrival / Seconds(1.0)) {
        arrivals.back().second++;
      } else {
        arrivals.emplace_back(arrival, 1);
      }
    }
  } endpoint;

  flow::TimeIntervalDispatch strategy;
  strategy.rate = flow::NormalCurve(1.0);
  strategy.interval = Minutes(1.0);
  ASSERT_TRUE(
      device_flow.ConfigureTask(TaskId(1), strategy, &endpoint).ok());

  const std::size_t total = 10000;
  for (std::uint64_t i = 0; i < total; ++i) {
    flow::Message m;
    m.id = MessageId(i);
    m.task = TaskId(1);
    ASSERT_TRUE(device_flow.OnMessage(std::move(m)).ok());
  }
  ASSERT_TRUE(device_flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();

  std::size_t received = 0;
  for (const auto& [at, n] : endpoint.arrivals) received += n;
  EXPECT_EQ(received, total);

  // Correlate per-second arrivals with the user curve (Table II ≥ 0.99;
  // allow a little slack for capacity-limit smearing at the peak).
  std::vector<double> counts(60, 0.0), expected(60, 0.0);
  for (const auto& [at, n] : endpoint.arrivals) {
    const auto second = static_cast<std::size_t>(ToSeconds(at));
    if (second < 60) counts[second] += static_cast<double>(n);
  }
  const auto curve = flow::NormalCurve(1.0);
  for (std::size_t s = 0; s < 60; ++s) {
    const double t = curve.domain_lo +
                     curve.domain_width() * (static_cast<double>(s) + 0.5) / 60.0;
    expected[s] = curve(t);
  }
  EXPECT_GT(PearsonCorrelation(counts, expected), 0.98);
}

// ---------- Quickstart-equivalent happy path ----------

TEST(IntegrationTest, QuickstartPipeline) {
  Platform platform;
  // 1. Queue and execute a hybrid task.
  sched::TaskSpec task;
  sched::DeviceRequirement requirement;
  requirement.grade = device::DeviceGrade::kHigh;
  requirement.num_devices = 25;
  requirement.benchmarking_phones = 1;
  requirement.logical_bundles = 80;
  requirement.phones = 2;
  task.requirements.push_back(requirement);
  ASSERT_TRUE(platform.SubmitTask(task).ok());
  const auto reports = platform.RunQueuedTasks();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);

  // 2. Run a small FL experiment on the same platform.
  data::SynthConfig data_config;
  data_config.num_devices = 50;
  data_config.hash_dim = 1u << 12;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);
  FlExperimentConfig fl;
  fl.rounds = 2;
  fl.train.epochs = 2;
  fl.trigger = cloud::AggregationTrigger::kScheduled;
  fl.schedule_period = Seconds(20.0);
  const auto result = platform.RunFlExperiment(dataset, fl);
  EXPECT_EQ(result.rounds.size(), 2u);
}

}  // namespace
}  // namespace simdc
