// Fault-tolerant fleet plane suite: deterministic device churn
// (device::BehaviorModel), flaky-link retry/backoff (flow::LinkPolicy),
// and graceful round degradation (AggregationService quorum/deadline).
//
// The load-bearing contract under test: every fault draw is a pure
// function of (seed, device/message key, time/attempt), so a fixed fault
// seed produces bit-identical FlRunResult, arrival stamps, drop counts and
// merged DispatchStats at every shard width — churn, transient failures
// and retries included — and turning every knob off reproduces the
// pre-fault-plane engine exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "cloud/aggregation.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"
#include "device/behavior.h"
#include "device/fleet.h"
#include "flow/device_flow.h"
#include "ml/lr_model.h"
#include "phonemgr/phone_mgr.h"
#include "sim/event_loop.h"

namespace simdc {
namespace {

// ---------- BehaviorModel: synthetic plane ----------

TEST(BehaviorModelTest, DisabledModelIsTransparent) {
  device::BehaviorConfig config;  // enabled = false
  device::BehaviorModel model(config);
  for (std::uint64_t key : {0ULL, 7ULL, 123456ULL}) {
    EXPECT_TRUE(model.Available(key, 0));
    EXPECT_TRUE(model.Available(key, Seconds(86400.0)));
    EXPECT_EQ(model.BatteryLevel(key, Seconds(5000.0)), 1.0);
    EXPECT_EQ(model.LinkFailureProbability(key, Seconds(5000.0)), 0.0);
  }
}

TEST(BehaviorModelTest, QueriesArePureFunctionsOfSeed) {
  device::BehaviorConfig config;
  config.enabled = true;
  config.seed = 42;
  config.mean_availability = 0.6;
  config.diurnal_amplitude = 0.3;
  config.churn_rate = 0.2;
  config.rejoin_fraction = 0.5;
  config.link_base_failure = 0.1;
  config.link_diurnal_swing = 0.2;
  device::BehaviorModel a(config);
  device::BehaviorModel b(config);
  for (std::uint64_t key = 0; key < 64; ++key) {
    for (const double t_s : {0.0, 3600.0, 43200.0, 86399.0}) {
      const SimTime t = Seconds(t_s);
      EXPECT_EQ(a.Available(key, t), b.Available(key, t));
      EXPECT_EQ(a.BatteryLevel(key, t), b.BatteryLevel(key, t));
      EXPECT_EQ(a.LinkFailureProbability(key, t),
                b.LinkFailureProbability(key, t));
    }
    EXPECT_EQ(a.LeaveTime(key), b.LeaveTime(key));
    EXPECT_EQ(a.RejoinTime(key), b.RejoinTime(key));
  }
}

TEST(BehaviorModelTest, DiurnalDutyCycleSwingsAroundMean) {
  device::BehaviorConfig config;
  config.enabled = true;
  config.mean_availability = 0.5;
  config.diurnal_amplitude = 0.4;
  config.diurnal_period = Seconds(86400.0);
  device::BehaviorModel model(config);
  // Peak at a quarter period (sin = 1), trough at three quarters.
  EXPECT_NEAR(model.DutyCycle(Seconds(21600.0)), 0.9, 1e-9);
  EXPECT_NEAR(model.DutyCycle(Seconds(64800.0)), 0.1, 1e-9);
  // Clamped into [0, 1] even with an over-full swing.
  config.diurnal_amplitude = 0.9;
  device::BehaviorModel wide(config);
  for (double t_s = 0.0; t_s < 86400.0; t_s += 3600.0) {
    const double duty = wide.DutyCycle(Seconds(t_s));
    EXPECT_GE(duty, 0.0);
    EXPECT_LE(duty, 1.0);
  }
}

TEST(BehaviorModelTest, AvailabilityTracksDutyCycle) {
  device::BehaviorConfig config;
  config.enabled = true;
  config.seed = 9;
  config.mean_availability = 0.5;
  config.diurnal_amplitude = 0.4;
  device::BehaviorModel model(config);
  const SimTime peak = Seconds(21600.0);
  const SimTime trough = Seconds(64800.0);
  std::size_t at_peak = 0, at_trough = 0;
  const std::uint64_t n = 2000;
  for (std::uint64_t key = 0; key < n; ++key) {
    at_peak += model.Available(key, peak) ? 1 : 0;
    at_trough += model.Available(key, trough) ? 1 : 0;
  }
  // Fixed per-device thresholds: the available SET follows the curve.
  EXPECT_NEAR(static_cast<double>(at_peak) / n, 0.9, 0.05);
  EXPECT_NEAR(static_cast<double>(at_trough) / n, 0.1, 0.05);
  // Monotone membership: everyone available at the trough is available at
  // the peak (their threshold is below the lower duty cycle).
  for (std::uint64_t key = 0; key < n; ++key) {
    if (model.Available(key, trough)) {
      EXPECT_TRUE(model.Available(key, peak)) << "key=" << key;
    }
  }
}

TEST(BehaviorModelTest, ChurnScheduleAndEvents) {
  device::BehaviorConfig config;
  config.enabled = true;
  config.seed = 5;
  config.mean_availability = 1.0;  // isolate churn
  config.churn_rate = 0.5;
  config.churn_horizon = Seconds(1000.0);
  config.rejoin_fraction = 0.5;
  config.churn_downtime = Seconds(100.0);
  device::BehaviorModel model(config);
  const std::uint64_t n = 200;
  std::size_t leavers = 0, rejoiners = 0;
  for (std::uint64_t key = 0; key < n; ++key) {
    const SimTime leave = model.LeaveTime(key);
    const SimTime rejoin = model.RejoinTime(key);
    if (leave < 0) {
      EXPECT_LT(rejoin, 0);
      EXPECT_TRUE(model.Available(key, Seconds(1500.0)));
      continue;
    }
    ++leavers;
    EXPECT_LT(leave, Seconds(1000.0));
    EXPECT_FALSE(model.Available(key, leave));  // gone from the instant on
    if (rejoin >= 0) {
      ++rejoiners;
      EXPECT_EQ(rejoin, leave + Seconds(100.0));
      EXPECT_TRUE(model.Available(key, rejoin));
    }
  }
  EXPECT_GT(leavers, n / 4);
  EXPECT_GT(rejoiners, 0u);

  // ChurnEventsBetween covers exactly the edges in the window, sorted.
  const auto events = model.ChurnEventsBetween(n, 0, Seconds(2000.0));
  std::size_t leaves = 0, joins = 0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(events[i - 1].time < events[i].time ||
                (events[i - 1].time == events[i].time &&
                 events[i - 1].device_key < events[i].device_key));
  }
  for (const auto& event : events) (event.join ? joins : leaves)++;
  EXPECT_EQ(leaves, leavers);
  EXPECT_EQ(joins, rejoiners);
}

TEST(BehaviorModelTest, BatterySawtoothAndGate) {
  device::BehaviorConfig config;
  config.enabled = true;
  config.seed = 11;
  config.mean_availability = 1.0;
  config.min_battery = 0.3;
  config.battery_period = Seconds(1000.0);
  device::BehaviorModel model(config);
  bool saw_charging = false, saw_low_unavailable = false;
  for (std::uint64_t key = 0; key < 50; ++key) {
    for (double t_s = 0.0; t_s < 1000.0; t_s += 25.0) {
      const SimTime t = Seconds(t_s);
      const double level = model.BatteryLevel(key, t);
      EXPECT_GE(level, 0.05 - 1e-9);
      EXPECT_LE(level, 1.0 + 1e-9);
      if (model.Charging(key, t)) {
        saw_charging = true;
        EXPECT_TRUE(model.Available(key, t));  // charging overrides the gate
      } else if (level < 0.3) {
        saw_low_unavailable = true;
        EXPECT_FALSE(model.Available(key, t));
      }
    }
  }
  EXPECT_TRUE(saw_charging);
  EXPECT_TRUE(saw_low_unavailable);
}

TEST(BehaviorModelTest, LinkFailurePeaksAtAvailabilityTrough) {
  device::BehaviorConfig config;
  config.enabled = true;
  config.link_base_failure = 0.05;
  config.link_diurnal_swing = 0.3;
  device::BehaviorModel model(config);
  const double at_peak = model.LinkFailureProbability(0, Seconds(21600.0));
  const double at_trough = model.LinkFailureProbability(0, Seconds(64800.0));
  EXPECT_NEAR(at_peak, 0.05, 1e-9);
  EXPECT_NEAR(at_trough, 0.35, 1e-9);
}

// ---------- BehaviorModel: trace replay ----------

TEST(UsageTraceTest, ParsesStatesStagesAndComments) {
  const auto events = device::ParseUsageTrace(
      "# Fig. 5 usage trace\n"
      "0 7 online\n"
      "10.5 7 offline   # screen off\n"
      "20 8 1\n"
      "30 8 4\n"
      "\n");
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ((*events)[0].device_key, 7u);
  EXPECT_EQ((*events)[0].time, 0);
  EXPECT_TRUE((*events)[0].online);
  EXPECT_EQ((*events)[1].time, Seconds(10.5));
  EXPECT_FALSE((*events)[1].online);
  EXPECT_FALSE((*events)[2].online);  // ApkStage 1 = no APK running
  EXPECT_TRUE((*events)[3].online);   // ApkStage 4 = running
}

TEST(UsageTraceTest, RejectsMalformedLines) {
  EXPECT_FALSE(device::ParseUsageTrace("10 7 sideways").ok());
  EXPECT_FALSE(device::ParseUsageTrace("10 7 9").ok());  // stage out of range
  EXPECT_FALSE(device::ParseUsageTrace("-1 7 online").ok());
  EXPECT_FALSE(device::ParseUsageTrace("banana").ok());
}

TEST(UsageTraceTest, TraceOverridesSyntheticCurve) {
  device::BehaviorConfig config;
  config.enabled = true;
  config.mean_availability = 0.0;  // synthetic curve says: nobody
  device::BehaviorModel model(config);
  auto events = device::ParseUsageTrace(
      "5 1 offline\n"
      "10 1 online\n");
  ASSERT_TRUE(events.ok());
  model.LoadTrace(std::move(*events));
  EXPECT_TRUE(model.HasTrace(1));
  EXPECT_FALSE(model.HasTrace(2));
  EXPECT_TRUE(model.Available(1, 0));              // before first edge
  EXPECT_FALSE(model.Available(1, Seconds(5.0)));  // offline edge rules
  EXPECT_FALSE(model.Available(1, Seconds(9.0)));
  EXPECT_TRUE(model.Available(1, Seconds(10.0)));
  EXPECT_TRUE(model.Available(1, Seconds(500.0)));
  EXPECT_FALSE(model.Available(2, Seconds(500.0)));  // untraced: synthetic
}

// ---------- Dispatcher link plane ----------

class CountingEndpoint final : public flow::CloudEndpoint {
 public:
  void Deliver(const flow::Message&, SimTime) override { ++delivered; }
  std::size_t delivered = 0;
};

flow::Message LinkMessage(std::uint64_t id) {
  flow::Message m;
  m.id = MessageId(id);
  m.task = TaskId(1);
  m.device = DeviceId(id);
  m.sample_count = 1;
  return m;
}

TEST(LinkPolicyTest, RetriesRecoverTransientFailures) {
  sim::EventLoop loop;
  CountingEndpoint sink;
  flow::Dispatcher dispatcher(loop, TaskId(1),
                              flow::RealtimeAccumulated{{1}, 0.0}, &sink, 21);
  flow::LinkPolicy link;
  link.transient_failure_probability = 0.5;
  link.max_attempts = 6;
  link.backoff_initial = Seconds(1.0);
  dispatcher.set_link_policy(link);
  const std::size_t n = 200;
  for (std::uint64_t id = 1; id <= n; ++id) {
    dispatcher.OnMessage(LinkMessage(id));
  }
  loop.Run();
  const flow::DispatchStats& stats = dispatcher.stats();
  EXPECT_EQ(stats.received, n);
  EXPECT_EQ(stats.sent + stats.dropped, n);  // quiescence taxonomy
  EXPECT_EQ(sink.delivered, stats.sent);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.retry_successes, 0u);
  // With p = 0.5 and 6 attempts, nearly everything gets through.
  EXPECT_GT(stats.sent, n * 9 / 10);
  EXPECT_EQ(stats.churn_losses, 0u);
  EXPECT_EQ(stats.deadline_drops, 0u);
}

TEST(LinkPolicyTest, SingleAttemptDropsWithoutRetry) {
  sim::EventLoop loop;
  CountingEndpoint sink;
  flow::Dispatcher dispatcher(loop, TaskId(1),
                              flow::RealtimeAccumulated{{1}, 0.0}, &sink, 21);
  flow::LinkPolicy link;
  link.transient_failure_probability = 0.5;
  link.max_attempts = 1;
  dispatcher.set_link_policy(link);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    dispatcher.OnMessage(LinkMessage(id));
  }
  loop.Run();
  const flow::DispatchStats& stats = dispatcher.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_GT(stats.dropped, 20u);
  EXPECT_EQ(stats.sent + stats.dropped, 100u);
}

TEST(LinkPolicyTest, UploadDeadlineBoundsTheRetrySchedule) {
  sim::EventLoop loop;
  CountingEndpoint sink;
  flow::Dispatcher dispatcher(loop, TaskId(1),
                              flow::RealtimeAccumulated{{1}, 0.0}, &sink, 21);
  flow::LinkPolicy link;
  link.transient_failure_probability = 0.6;
  link.max_attempts = 10;
  link.backoff_initial = Seconds(4.0);
  link.upload_deadline = Seconds(6.0);  // roughly one retry fits
  dispatcher.set_link_policy(link);
  for (std::uint64_t id = 1; id <= 200; ++id) {
    dispatcher.OnMessage(LinkMessage(id));
  }
  loop.Run();
  const flow::DispatchStats& stats = dispatcher.stats();
  EXPECT_GT(stats.deadline_drops, 0u);
  EXPECT_EQ(stats.sent + stats.dropped, 200u);
  // Every deadline drop is also a plain drop (loss taxonomy).
  EXPECT_GE(stats.dropped, stats.deadline_drops);
}

TEST(LinkPolicyTest, ChurnedDevicesBookChurnLosses) {
  sim::EventLoop loop;
  CountingEndpoint sink;
  flow::Dispatcher dispatcher(loop, TaskId(1),
                              flow::RealtimeAccumulated{{1}, 0.0}, &sink, 21);
  flow::LinkPolicy link;
  link.max_attempts = 3;
  link.backoff_initial = Seconds(1.0);
  dispatcher.set_link_policy(link);
  // Odd devices are churned out forever; evens have a perfect link.
  dispatcher.set_availability(
      [](DeviceId device, SimTime) { return device.value() % 2 == 0; });
  for (std::uint64_t id = 1; id <= 100; ++id) {
    dispatcher.OnMessage(LinkMessage(id));
  }
  loop.Run();
  const flow::DispatchStats& stats = dispatcher.stats();
  EXPECT_EQ(stats.churn_losses, 50u);
  EXPECT_EQ(stats.dropped, 50u);
  EXPECT_EQ(stats.sent, 50u);
  EXPECT_EQ(sink.delivered, 50u);
  // Each churned message burned its two retries before the loss.
  EXPECT_EQ(stats.retries, 100u);
  EXPECT_EQ(stats.retry_successes, 0u);
}

TEST(LinkPolicyTest, RetryScheduleIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    sim::EventLoop loop;
    CountingEndpoint sink;
    flow::Dispatcher dispatcher(loop, TaskId(1),
                                flow::RealtimeAccumulated{{1}, 0.0}, &sink,
                                seed);
    flow::LinkPolicy link;
    link.transient_failure_probability = 0.4;
    link.max_attempts = 4;
    dispatcher.set_link_policy(link);
    for (std::uint64_t id = 1; id <= 150; ++id) {
      dispatcher.OnMessage(LinkMessage(id));
    }
    loop.Run();
    return dispatcher.stats();
  };
  const auto a = run(77);
  const auto b = run(77);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retry_successes, b.retry_successes);
  EXPECT_EQ(a.batches, b.batches);  // identical retry fire times
  const auto c = run(78);
  EXPECT_NE(a.batches, c.batches);  // the seed actually matters
}

TEST(ChurnRegressionTest, UnregisterPhoneWithPendingRetriesNoDangling) {
  // The churn scenario with dangling potential: a device leaves the fleet
  // (PhoneMgr::UnregisterPhone) while its dispatcher still has in-flight
  // retry events whose closures capture the dispatcher. Tearing the
  // dispatcher down must cancel every pending retry; the drained loop then
  // touches no freed memory (this is an ASan/UBSan-gated suite in CI).
  sim::EventLoop loop;
  device::PhoneMgr mgr(loop);
  mgr.RegisterFleet(device::MakeDefaultCluster(42));
  const std::size_t fleet = mgr.TotalPhones();

  CountingEndpoint sink;
  auto dispatcher = std::make_unique<flow::Dispatcher>(
      loop, TaskId(1), flow::RealtimeAccumulated{{1}, 0.0}, &sink, 99);
  flow::LinkPolicy link;
  link.transient_failure_probability = 0.95;
  link.max_attempts = 8;
  link.backoff_initial = Seconds(60.0);  // retries land far in the future
  dispatcher->set_link_policy(link);
  for (std::uint64_t id = 1; id <= 64; ++id) {
    dispatcher->OnMessage(LinkMessage(id));
  }
  loop.RunUntil(Seconds(1.0));  // attempt 0 fired, retries now pending
  ASSERT_GT(dispatcher->pending_retries(), 0u);

  // The churned device leaves mid-flight.
  ASSERT_TRUE(mgr.UnregisterPhone(PhoneId(1)).ok());
  EXPECT_EQ(mgr.TotalPhones(), fleet - 1);
  EXPECT_EQ(mgr.FindPhone(PhoneId(1)), nullptr);

  const std::size_t delivered_before = sink.delivered;
  dispatcher.reset();  // cancels every pending this-capturing retry
  loop.Run();          // nothing left to fire into freed memory
  EXPECT_EQ(sink.delivered, delivered_before);
}

// ---------- AggregationService quorum/deadline policy ----------

class QuorumTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kDim = 8;

  flow::Message Upload(float weight0, std::size_t samples, std::uint64_t id) {
    ml::LrModel model(kDim);
    model.weights()[0] = weight0;
    flow::Message m;
    m.id = MessageId(id);
    m.task = TaskId(1);
    m.device = DeviceId(id);
    m.round = 0;
    m.payload = store_.Put(model.ToBytes());
    m.sample_count = samples;
    return m;
  }

  cloud::AggregationConfig PolicyConfig() {
    cloud::AggregationConfig config;
    config.model_dim = kDim;
    config.trigger = cloud::AggregationTrigger::kSampleThreshold;
    config.sample_threshold = 1000000;  // the deadline is the only closer
    config.round_quorum = 2;
    config.round_deadline = Seconds(10.0);
    config.round_extension = Seconds(5.0);
    config.max_round_extensions = 1;
    return config;
  }

  sim::EventLoop loop_;
  cloud::BlobStore store_;
};

TEST_F(QuorumTest, DeadlineCommitsWithQuorumMet) {
  cloud::AggregationService service(loop_, store_, PolicyConfig());
  service.OnRoundOpened(0);
  service.Deliver(Upload(1.0f, 10, 1), Seconds(1.0));
  service.Deliver(Upload(3.0f, 10, 2), Seconds(2.0));
  EXPECT_EQ(service.rounds_completed(), 0u);  // threshold unreachable
  loop_.Run();
  ASSERT_EQ(service.rounds_completed(), 1u);
  EXPECT_EQ(service.deadline_commits(), 1u);
  EXPECT_EQ(service.round_extensions(), 0u);
  EXPECT_EQ(service.aborted_rounds(), 0u);
  EXPECT_EQ(service.history()[0].time, Seconds(10.0));
  EXPECT_EQ(service.history()[0].clients, 2u);
  EXPECT_NEAR(service.global_model().weights()[0], 2.0, 1e-6);
}

TEST_F(QuorumTest, DeadlineExtendsBelowQuorumThenCommits) {
  cloud::AggregationService service(loop_, store_, PolicyConfig());
  service.OnRoundOpened(0);
  service.Deliver(Upload(1.0f, 10, 1), Seconds(1.0));
  // The second update straggles in during the extension window.
  loop_.ScheduleAt(Seconds(12.0), [&] {
    service.Deliver(Upload(3.0f, 10, 2), Seconds(12.0));
  });
  loop_.Run();
  ASSERT_EQ(service.rounds_completed(), 1u);
  EXPECT_EQ(service.round_extensions(), 1u);
  EXPECT_EQ(service.deadline_commits(), 1u);
  EXPECT_EQ(service.aborted_rounds(), 0u);
  EXPECT_EQ(service.history()[0].time, Seconds(15.0));  // deadline + 5s
  EXPECT_EQ(service.history()[0].clients, 2u);
}

TEST_F(QuorumTest, AbortsAfterExtensionsExhausted) {
  cloud::AggregationService service(loop_, store_, PolicyConfig());
  SimTime aborted_at = -1;
  service.set_on_round_aborted([&](SimTime when) { aborted_at = when; });
  service.OnRoundOpened(0);
  service.Deliver(Upload(1.0f, 10, 1), Seconds(1.0));  // forever below quorum
  loop_.Run();
  EXPECT_EQ(service.rounds_completed(), 0u);
  EXPECT_EQ(service.round_extensions(), 1u);
  EXPECT_EQ(service.aborted_rounds(), 1u);
  EXPECT_EQ(service.deadline_commits(), 0u);
  EXPECT_EQ(aborted_at, Seconds(15.0));  // deadline + one extension
  // The partial accumulator was discarded with the round.
  EXPECT_EQ(service.pending_clients(), 0u);
  EXPECT_EQ(service.pending_samples(), 0u);
}

TEST_F(QuorumTest, TriggerClosingOnTimeRetiresTheDeadline) {
  auto config = PolicyConfig();
  config.sample_threshold = 20;  // reachable before the deadline
  cloud::AggregationService service(loop_, store_, config);
  service.OnRoundOpened(0);
  service.Deliver(Upload(1.0f, 10, 1), Seconds(1.0));
  service.Deliver(Upload(3.0f, 10, 2), Seconds(2.0));
  ASSERT_EQ(service.rounds_completed(), 1u);  // threshold closed it
  loop_.Run();  // any stale deadline event must be gone or inert
  EXPECT_EQ(service.rounds_completed(), 1u);
  EXPECT_EQ(service.deadline_commits(), 0u);
  EXPECT_EQ(service.round_extensions(), 0u);
  EXPECT_EQ(service.aborted_rounds(), 0u);
}

TEST_F(QuorumTest, DisabledPolicySchedulesNothing) {
  auto config = PolicyConfig();
  config.round_quorum = 0;  // half-set policy stays off
  cloud::AggregationService service(loop_, store_, config);
  service.OnRoundOpened(0);
  EXPECT_EQ(loop_.Run(), 0u);  // no deadline event was armed
}

TEST_F(QuorumTest, SnapshotRoundTripsDegradationCounters) {
  cloud::AggregationService service(loop_, store_, PolicyConfig());
  service.OnRoundOpened(0);
  service.Deliver(Upload(1.0f, 10, 1), Seconds(1.0));
  service.Deliver(Upload(3.0f, 10, 2), Seconds(2.0));
  loop_.Run();  // one deadline commit
  const cloud::AggregationSnapshot snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.deadline_commits, 1u);
  cloud::AggregationService restored(loop_, store_, PolicyConfig());
  restored.RestoreSnapshot(snapshot);
  EXPECT_EQ(restored.deadline_commits(), 1u);
  EXPECT_EQ(restored.round_extensions(), 0u);
  EXPECT_EQ(restored.aborted_rounds(), 0u);
  EXPECT_EQ(restored.rounds_completed(), 1u);
}

// ---------- Engine integration: the fault plane end to end ----------

data::FederatedDataset Dataset(std::size_t devices = 96) {
  data::SynthConfig config;
  config.num_devices = devices;
  config.records_per_device_mean = 10;
  config.num_test_devices = 8;
  config.hash_dim = 1u << 10;
  config.seed = 33;
  return data::GenerateSyntheticAvazu(config);
}

core::FlExperimentConfig BaseConfig() {
  core::FlExperimentConfig config;
  config.rounds = 3;
  config.train.learning_rate = 0.05;
  config.train.epochs = 1;
  config.logical_fraction = 0.5;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(30.0);
  config.seed = 7;
  config.strategy = flow::RealtimeAccumulated{
      {1}, 0.0, flow::kShardWidthInvariantCapacity};
  return config;
}

/// Full fault ladder: diurnal availability + churn + flaky links + retries
/// + per-message deadlines, in the width-invariant flow regime.
core::FlExperimentConfig FaultConfig() {
  auto config = BaseConfig();
  config.behavior.enabled = true;
  config.behavior.seed = 19;
  config.behavior.mean_availability = 0.8;
  config.behavior.diurnal_amplitude = 0.15;
  config.behavior.diurnal_period = Seconds(120.0);  // fast cycle for a test
  config.behavior.churn_rate = 0.15;
  config.behavior.churn_horizon = Seconds(60.0);
  config.behavior.rejoin_fraction = 0.5;
  config.behavior.churn_downtime = Seconds(20.0);
  config.behavior.link_base_failure = 0.15;
  config.behavior.link_diurnal_swing = 0.2;
  config.link.max_attempts = 3;
  config.link.backoff_initial = Seconds(2.0);
  config.link.backoff_multiplier = 2.0;
  config.link.upload_deadline = Seconds(25.0);
  return config;
}

struct FaultOutcome {
  core::FlRunResult result;
  flow::DispatchStats stats;
  std::size_t messages_received = 0;
  std::size_t decode_failures = 0;
  std::size_t stale_rejections = 0;
};

FaultOutcome RunFault(const data::FederatedDataset& dataset,
                      core::FlExperimentConfig config, std::size_t shards) {
  sim::EventLoop loop;
  config.shards = shards;
  core::FlEngine engine(loop, dataset, std::move(config));
  FaultOutcome out;
  out.result = engine.Run();
  out.stats = engine.dispatch_stats();
  out.messages_received = engine.aggregation().messages_received();
  out.decode_failures = engine.aggregation().decode_failures();
  out.stale_rejections = engine.aggregation().stale_rejections();
  return out;
}

void ExpectOutcomesIdentical(const FaultOutcome& a, const FaultOutcome& b,
                             std::size_t shards) {
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size())
      << "shards=" << shards;
  for (std::size_t i = 0; i < a.result.rounds.size(); ++i) {
    EXPECT_EQ(a.result.rounds[i].round, b.result.rounds[i].round);
    EXPECT_EQ(a.result.rounds[i].time, b.result.rounds[i].time)
        << "shards=" << shards << " round=" << i;
    EXPECT_EQ(a.result.rounds[i].clients, b.result.rounds[i].clients);
    EXPECT_EQ(a.result.rounds[i].samples, b.result.rounds[i].samples);
    EXPECT_EQ(a.result.rounds[i].test_accuracy,
              b.result.rounds[i].test_accuracy);
    EXPECT_EQ(a.result.rounds[i].test_logloss,
              b.result.rounds[i].test_logloss);
    EXPECT_EQ(a.result.rounds[i].train_accuracy,
              b.result.rounds[i].train_accuracy);
    EXPECT_EQ(a.result.rounds[i].train_logloss,
              b.result.rounds[i].train_logloss);
  }
  EXPECT_EQ(a.result.messages_emitted, b.result.messages_emitted);
  EXPECT_EQ(a.result.messages_dropped, b.result.messages_dropped);
  EXPECT_EQ(a.result.skipped_unavailable, b.result.skipped_unavailable);
  EXPECT_EQ(a.result.rounds_degraded, b.result.rounds_degraded);
  EXPECT_EQ(a.result.rounds_extended, b.result.rounds_extended);
  EXPECT_EQ(a.result.rounds_aborted, b.result.rounds_aborted);
  ASSERT_EQ(a.result.final_weights.size(), b.result.final_weights.size());
  EXPECT_EQ(0, std::memcmp(a.result.final_weights.data(),
                           b.result.final_weights.data(),
                           a.result.final_weights.size() * sizeof(float)))
      << "shards=" << shards;
  EXPECT_EQ(a.result.final_bias, b.result.final_bias);
  EXPECT_EQ(a.stats.received, b.stats.received) << "shards=" << shards;
  EXPECT_EQ(a.stats.sent, b.stats.sent) << "shards=" << shards;
  EXPECT_EQ(a.stats.dropped, b.stats.dropped) << "shards=" << shards;
  EXPECT_EQ(a.stats.retries, b.stats.retries) << "shards=" << shards;
  EXPECT_EQ(a.stats.retry_successes, b.stats.retry_successes)
      << "shards=" << shards;
  EXPECT_EQ(a.stats.deadline_drops, b.stats.deadline_drops)
      << "shards=" << shards;
  EXPECT_EQ(a.stats.churn_losses, b.stats.churn_losses)
      << "shards=" << shards;
  EXPECT_EQ(a.stats.batches, b.stats.batches) << "shards=" << shards;
  EXPECT_EQ(a.stats.batch_keys, b.stats.batch_keys) << "shards=" << shards;
  EXPECT_EQ(a.messages_received, b.messages_received) << "shards=" << shards;
  EXPECT_EQ(a.decode_failures, b.decode_failures) << "shards=" << shards;
  EXPECT_EQ(a.stale_rejections, b.stale_rejections) << "shards=" << shards;
}

TEST(FaultPlaneEngineTest, KnobsOffReproducesPrePolicyRunExactly) {
  // A config with the fault-plane structs present but every gate off
  // (behavior disabled, inactive link policy, half-set quorum) must be
  // byte-identical to the plain config — no deadline events, no hooks, no
  // counter drift.
  const auto dataset = Dataset();
  const auto plain = RunFault(dataset, BaseConfig(), 1);
  auto off = BaseConfig();
  off.behavior.enabled = false;
  off.behavior.churn_rate = 0.9;  // irrelevant while disabled
  off.link = flow::LinkPolicy{};
  off.round_quorum = 5;  // deadline unset: policy must stay disengaged
  off.round_deadline = 0;
  const auto gated = RunFault(dataset, off, 1);
  ExpectOutcomesIdentical(plain, gated, 1);
  EXPECT_EQ(gated.result.skipped_unavailable, 0u);
  EXPECT_EQ(gated.result.rounds_degraded, 0u);
  EXPECT_EQ(gated.stats.retries, 0u);
}

TEST(FaultPlaneEngineTest, ChurnRetriesBitIdenticalAcrossShardWidths) {
  // THE acceptance gate: a fixed fault seed produces bit-identical runs at
  // widths 1/2/4/8 under simultaneous churn, transient failures and
  // retries — results, arrival logs, drop/retry counters, everything.
  const auto dataset = Dataset();
  const auto reference = RunFault(dataset, FaultConfig(), 1);
  ASSERT_EQ(reference.result.rounds.size(), 3u);
  // The config must actually exercise the plane, or the sweep proves
  // nothing.
  EXPECT_GT(reference.result.skipped_unavailable, 0u);
  EXPECT_GT(reference.stats.retries, 0u);
  EXPECT_GT(reference.stats.retry_successes, 0u);
  EXPECT_GT(reference.stats.dropped, 0u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    ExpectOutcomesIdentical(reference, RunFault(dataset, FaultConfig(), shards),
                            shards);
  }
}

TEST(FaultPlaneEngineTest, LegacyPlaneMatchesDecodedUnderFaults) {
  // The decoded/legacy payload-plane equivalence must survive the fault
  // plane: retried messages decode at their retry-fire tick on the decoded
  // plane and inline on the legacy plane, same bits either way.
  const auto dataset = Dataset();
  auto legacy = FaultConfig();
  legacy.decode_plane = flow::DecodePlane::kLegacy;
  const auto reference = RunFault(dataset, FaultConfig(), 1);
  for (const std::size_t shards : {1u, 4u}) {
    ExpectOutcomesIdentical(reference, RunFault(dataset, legacy, shards),
                            shards);
  }
}

TEST(FaultPlaneEngineTest, QuorumDeadlineDegradesRoundsGracefully) {
  // Sample-threshold trigger with an unreachable threshold: every round
  // closes through the deadline path. With quorum within reach, rounds
  // commit degraded instead of stalling out.
  const auto dataset = Dataset();
  auto config = FaultConfig();
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 1000000;
  config.round_quorum = 10;
  config.round_deadline = Seconds(40.0);
  config.round_extension = Seconds(20.0);
  config.max_round_extensions = 1;
  const auto outcome = RunFault(dataset, config, 1);
  ASSERT_EQ(outcome.result.rounds.size(), 3u);
  EXPECT_EQ(outcome.result.rounds_degraded, 3u);
  EXPECT_EQ(outcome.result.rounds_aborted, 0u);
  for (const auto& round : outcome.result.rounds) {
    EXPECT_GE(round.clients, 10u);  // every commit carried quorum
  }
  // Degradation under faults is ALSO width-invariant.
  for (const std::size_t shards : {2u, 4u}) {
    ExpectOutcomesIdentical(outcome, RunFault(dataset, config, shards),
                            shards);
  }
}

TEST(FaultPlaneEngineTest, QuorumNeverMetAbortsEveryRound) {
  const auto dataset = Dataset(24);
  auto config = BaseConfig();
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 1000000;
  config.round_quorum = 500;  // larger than the fleet: unreachable
  config.round_deadline = Seconds(20.0);
  config.max_round_extensions = 1;
  const auto outcome = RunFault(dataset, config, 1);
  ASSERT_EQ(outcome.result.rounds.size(), 3u);
  EXPECT_EQ(outcome.result.rounds_aborted, 3u);
  EXPECT_EQ(outcome.result.rounds_degraded, 0u);
  EXPECT_EQ(outcome.result.rounds_extended, 3u);
  for (const auto& round : outcome.result.rounds) {
    EXPECT_EQ(round.clients, 0u);  // nothing aggregated
  }
}

TEST(FaultPlaneEngineTest, TraceReplayGatesParticipation) {
  // A Fig. 5-style trace pinning one device offline forever removes it
  // from every round; the rest of the fleet is untouched.
  const auto dataset = Dataset(32);
  auto config = BaseConfig();
  config.behavior.enabled = true;
  config.behavior.mean_availability = 1.0;  // only the trace gates
  sim::EventLoop loop;
  core::FlEngine engine(loop, dataset, config);
  ASSERT_NE(engine.behavior_model(), nullptr);
  const std::uint64_t victim = dataset.devices[0].device.value();
  auto events = device::ParseUsageTrace(
      std::to_string(0) + " " + std::to_string(victim) + " offline\n");
  ASSERT_TRUE(events.ok());
  engine.behavior_model()->LoadTrace(std::move(*events));
  const auto result = engine.Run();
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.skipped_unavailable, 3u);  // once per round
  // One device short per round, everyone else participated.
  EXPECT_EQ(result.messages_emitted, 3u * (dataset.devices.size() - 1));
}

TEST(FaultPlaneEngineTest, MidRunRegistrationViaChurnEvents) {
  // The churn schedule drives PhoneMgr membership: leavers unregister,
  // rejoiners register mid-run, and the fleet count tracks the edges.
  sim::EventLoop loop;
  device::PhoneMgr mgr(loop);
  const auto cluster = device::MakeDefaultCluster(42);
  mgr.RegisterFleet(cluster);
  const std::size_t fleet = mgr.TotalPhones();
  ASSERT_EQ(fleet, cluster.size());

  device::BehaviorConfig config;
  config.enabled = true;
  config.seed = 3;
  config.churn_rate = 0.4;
  config.churn_horizon = Seconds(100.0);
  config.rejoin_fraction = 0.5;
  config.churn_downtime = Seconds(30.0);
  device::BehaviorModel model(config);

  // Churn-schedule keys index into the cluster's spec list.
  const auto events =
      model.ChurnEventsBetween(cluster.size(), 0, Seconds(300.0));
  ASSERT_FALSE(events.empty());
  std::size_t live = fleet;
  for (const auto& event : events) {
    const device::PhoneSpec& spec = cluster[event.device_key];
    if (event.join) {
      ASSERT_EQ(mgr.FindPhone(spec.id), nullptr);  // it left earlier
      mgr.RegisterPhone(spec);
      ++live;
    } else {
      ASSERT_TRUE(mgr.UnregisterPhone(spec.id).ok()) << event.device_key;
      --live;
    }
    EXPECT_EQ(mgr.TotalPhones(), live);
  }
  EXPECT_LT(live, fleet);  // some leavers never rejoined
}

}  // namespace
}  // namespace simdc
