// Unit tests for src/common: errors, ids, RNG, statistics, strings,
// thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <set>

#include "common/det_hash.h"
#include "common/error.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace simdc {
namespace {

// ---------- Result / Status ----------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("missing thing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(ResultTest, ErrorOnOkThrows) {
  Result<int> r = 1;
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesError) {
  Status s = ResourceExhausted("pool dry");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(s.ToString().find("pool dry"), std::string::npos);
}

TEST(ErrorTest, ToStringIncludesCodeName) {
  EXPECT_NE(ParseError("bad").ToString().find("ParseError"),
            std::string::npos);
}

TEST(CheckTest, ThrowsWithMessage) {
  EXPECT_THROW(SIMDC_CHECK(false, "reason " << 42), std::invalid_argument);
  EXPECT_NO_THROW(SIMDC_CHECK(true, "fine"));
}

// ---------- Strong ids ----------

TEST(IdsTest, DistinctTypesAndEquality) {
  TaskId a(1), b(1), c(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(TaskId().valid());
}

TEST(IdsTest, ToStringUsesPrefix) {
  EXPECT_EQ(TaskId(7).ToString(), "task-7");
  EXPECT_EQ(PhoneId(3).ToString(), "phone-3");
  EXPECT_EQ(DeviceId(9).ToString(), "dev-9");
}

TEST(IdsTest, Hashable) {
  std::set<TaskId> ids = {TaskId(1), TaskId(2), TaskId(1)};
  EXPECT_EQ(ids.size(), 2u);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, SplitIsStableAndIndependent) {
  const Rng root(99);
  Rng c1 = root.Split(5);
  Rng c2 = root.Split(5);
  Rng c3 = root.Split(6);
  EXPECT_EQ(c1(), c2());
  EXPECT_NE(c1(), c3());
}

TEST(RngTest, SplitByLabel) {
  const Rng root(7);
  EXPECT_EQ(root.Split("alpha")(), root.Split("alpha")());
  EXPECT_NE(root.Split("alpha")(), root.Split("beta")());
}

TEST(RngTest, UniformInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.UniformInt(3, 2), std::invalid_argument);
}

TEST(RngTest, NormalMoments) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 30000; ++i) stats.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_THROW(rng.Exponential(0.0), std::invalid_argument);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(10);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 20000; ++i) ones += rng.Categorical(weights) == 1;
  EXPECT_NEAR(ones / 20000.0, 0.75, 0.02);
}

TEST(RngTest, CategoricalRejectsBadWeights) {
  Rng rng(10);
  EXPECT_THROW(rng.Categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.Categorical({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t s : unique) EXPECT_LT(s, 100u);
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  // Each index should appear with probability k/n.
  Rng rng(13);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t idx : rng.SampleWithoutReplacement(20, 5)) {
      ++counts[idx];
    }
  }
  for (int c : counts) EXPECT_NEAR(c / static_cast<double>(trials), 0.25, 0.03);
}

TEST(HashStringTest, StableAndDistinct) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
}

// ---------- Deterministic hashing ----------

TEST(DeterministicHashTest, MatchesHistoricalDropFormula) {
  // HashCombine must reproduce the transmission-drop draw bit-for-bit:
  // SplitMix64(seed ^ SplitMix64(value)). Seeded fault patterns from runs
  // before the helper existed depend on it.
  const std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t id = 1; id <= 64; ++id) {
    EXPECT_EQ(HashCombine(seed, id), SplitMix64(seed ^ SplitMix64(id)));
  }
}

TEST(DeterministicHashTest, VariadicChainsPairwise) {
  // DeterministicHash(k, a, b) folds left: each extra field re-keys the
  // chain, so it must equal HashCombine applied pairwise.
  const std::uint64_t k = 7, a = 11, b = 13, c = 17;
  EXPECT_EQ(DeterministicHash(k, a), HashCombine(k, a));
  EXPECT_EQ(DeterministicHash(k, a, b), HashCombine(HashCombine(k, a), b));
  EXPECT_EQ(DeterministicHash(k, a, b, c),
            HashCombine(HashCombine(HashCombine(k, a), b), c));
}

TEST(DeterministicHashTest, ArgumentOrderMatters) {
  EXPECT_NE(DeterministicHash(1, 2, 3), DeterministicHash(1, 3, 2));
  EXPECT_NE(DeterministicHash(2, 1, 3), DeterministicHash(1, 2, 3));
}

TEST(DeterministicHashTest, HashUnitInHalfOpenUnitInterval) {
  // Same 53-bit mapping Rng::Uniform uses; the all-ones hash must stay
  // strictly below 1.
  EXPECT_EQ(HashUnit(0), 0.0);
  EXPECT_LT(HashUnit(~0ULL), 1.0);
  std::uint64_t h = 42;
  for (int i = 0; i < 1000; ++i) {
    h = SplitMix64(h);
    const double u = HashUnit(h);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(DeterministicHashTest, IsConstexpr) {
  // Usable for compile-time salts (behavior-model streams rely on it).
  static_assert(DeterministicHash(1, 2, 3) == DeterministicHash(1, 2, 3));
  static_assert(HashUnit(DeterministicHash(5, 6)) >= 0.0);
  SUCCEED();
}

// ---------- Statistics ----------

TEST(RunningStatsTest, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SumIsExactAcrossChainedMerges) {
  // Regression: sum() used to be reconstructed as mean * count, whose
  // rounding error compounds over chained Merge() calls — exactly the
  // per-shard stats merge pattern the sharded engine performs every round.
  // A tracked compensated sum stays within one rounding of the truth.
  Rng rng(11);
  RunningStats merged;
  long double reference = 0.0L;
  for (int round = 0; round < 200; ++round) {
    RunningStats shard;
    for (int i = 0; i < 50; ++i) {
      // Mixed magnitudes make naive accumulation visibly lossy.
      const double x = rng.Uniform() * (i % 7 == 0 ? 1e12 : 1e-3);
      shard.Add(x);
      reference += static_cast<long double>(x);
    }
    merged.Merge(shard);
  }
  EXPECT_EQ(merged.count(), 200u * 50u);
  const double expected = static_cast<double>(reference);
  EXPECT_NEAR(merged.sum(), expected, std::abs(expected) * 1e-15);
}

TEST(RunningStatsTest, MergeIsAssociativeForSum) {
  // Integer-valued samples are exactly representable, so both merge
  // groupings must produce the same bits.
  Rng rng(29);
  std::vector<double> xs(300);
  for (double& x : xs) x = static_cast<double>(rng.UniformInt(-1000, 1000));

  auto fill = [&](std::size_t lo, std::size_t hi) {
    RunningStats s;
    for (std::size_t i = lo; i < hi; ++i) s.Add(xs[i]);
    return s;
  };
  RunningStats a = fill(0, 100), b = fill(100, 200), c = fill(200, 300);

  RunningStats left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  RunningStats bc = b;     // a + (b + c)
  bc.Merge(c);
  RunningStats right = a;
  right.Merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  double direct = 0.0;
  for (double x : xs) direct += x;
  EXPECT_EQ(left.sum(), direct);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> yneg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, yneg), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceReturnsZero) {
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {2, 4, 6};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonTest, MismatchThrows) {
  std::vector<double> x = {1, 2};
  std::vector<double> y = {1};
  EXPECT_THROW(PearsonCorrelation(x, y), std::invalid_argument);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25);
  EXPECT_THROW(Percentile(std::vector<double>{}, 50), std::invalid_argument);
  EXPECT_THROW(Percentile(v, 101), std::invalid_argument);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);    // bin 0
  h.Add(9.9);    // bin 4
  h.Add(-3.0);   // clamps to bin 0
  h.Add(100.0);  // clamps to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.ToAscii().empty());
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  // Infinite bounds would make every sample's bin position NaN.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Histogram(-inf, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, inf, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, std::numeric_limits<double>::quiet_NaN(), 3),
               std::invalid_argument);
}

TEST(HistogramTest, NonFiniteSamplesAreRoutedExplicitly) {
  // Regression: Add() used to cast (x - lo) / width straight to
  // ptrdiff_t, which is UB for NaN/±inf (and for finite values outside
  // ptrdiff_t's range) — flagged by UBSan. NaN is dropped and tallied;
  // infinities and huge finite values clamp to the edge bins.
  Histogram h(0.0, 10.0, 5);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  h.Add(1e300);
  h.Add(-1e300);
  h.Add(std::numeric_limits<double>::max());
  EXPECT_EQ(h.nan_dropped(), 1u);
  EXPECT_EQ(h.total(), 5u);  // NaN excluded, everything else binned
  EXPECT_EQ(h.bin_count(0), 2u);  // -inf, -1e300
  EXPECT_EQ(h.bin_count(4), 3u);  // +inf, 1e300, DBL_MAX
}

TEST(HistogramTest, ToAsciiHandlesWideLabelsAndLargeCounts) {
  // Regression: the fixed char[64] line buffer silently truncated wide
  // bin edges, and counts * width overflowed std::size_t.
  Histogram h(-1.0e9, 1.0e9, 2);
  for (int i = 0; i < 3; ++i) h.Add(-5.0e8);
  h.Add(5.0e8);
  const std::string art = h.ToAscii(40);
  // Both full edge values survive un-truncated.
  EXPECT_NE(art.find("-1000000000.000"), std::string::npos);
  EXPECT_NE(art.find("1000000000.000"), std::string::npos);
  // Peak bin renders the full bar; the 1/3-height bin renders 13 marks.
  const auto first_line_end = art.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
  EXPECT_EQ(std::count(art.begin(),
                       art.begin() + static_cast<std::ptrdiff_t>(first_line_end),
                       '#'),
            40);
  EXPECT_EQ(std::count(art.begin() + static_cast<std::ptrdiff_t>(first_line_end),
                       art.end(), '#'),
            13);
}

TEST(HistogramTest, ApproxPercentileInterpolatesWithinBins) {
  EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 4).ApproxPercentile(0.5), 0.0);

  // A lone sample must be estimated near its own bin, not smeared to an
  // edge: the within-bin midpoint convention bounds the error by half a
  // bin width.
  Histogram lone(0.0, 60.0, 256);
  lone.Add(60.0);
  for (double p : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_NEAR(lone.ApproxPercentile(p), 60.0, 60.0 / 256.0) << "p=" << p;
  }

  // Uniform spread: percentiles should track the sample values closely.
  Histogram uniform(0.0, 100.0, 256);
  for (int i = 0; i < 100; ++i) uniform.Add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(uniform.ApproxPercentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(uniform.ApproxPercentile(0.95), 95.0, 1.0);
  EXPECT_NEAR(uniform.ApproxPercentile(0.99), 99.0, 1.0);

  // Quantile ordering is monotone and p is clamped to [0, 1].
  const double p50 = uniform.ApproxPercentile(0.5);
  const double p95 = uniform.ApproxPercentile(0.95);
  const double p99 = uniform.ApproxPercentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_DOUBLE_EQ(uniform.ApproxPercentile(-0.5),
                   uniform.ApproxPercentile(0.0));
  EXPECT_DOUBLE_EQ(uniform.ApproxPercentile(2.0),
                   uniform.ApproxPercentile(1.0));
}

// ---------- Strings ----------

TEST(StringUtilTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitWhitespace) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, SplitLines) {
  const auto lines = SplitLines("one\ntwo\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "two");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  x y  "), "x y");
  EXPECT_EQ(TrimWhitespace("\t\n"), "");
}

TEST(StringUtilTest, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("42x").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("3.5%").has_value());
}

TEST(StringUtilTest, FirstIntIn) {
  EXPECT_EQ(FirstIntIn("TOTAL PSS: 46180 kB"), 46180);
  EXPECT_EQ(FirstIntIn("temp -12 deg"), -12);
  EXPECT_FALSE(FirstIntIn("no numbers").has_value());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ExecutesSubmittedJobs) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ManyConcurrentSubmissions) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&counter] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

}  // namespace
}  // namespace simdc
