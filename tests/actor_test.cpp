// Unit tests for the actor substrate: resource pools, placement groups,
// actor ordering, Ray-runner job submission.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "actor/cluster.h"
#include "actor/ray_runner.h"
#include "actor/resource.h"

namespace simdc::actor {
namespace {

// ---------- ResourceBundle ----------

TEST(ResourceBundleTest, Arithmetic) {
  ResourceBundle a{4, 12}, b{1, 6};
  const ResourceBundle sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpu_cores, 5);
  EXPECT_DOUBLE_EQ(sum.memory_gb, 18);
  const ResourceBundle diff = a - b;
  EXPECT_DOUBLE_EQ(diff.cpu_cores, 3);
  const ResourceBundle scaled = b * 3.0;
  EXPECT_DOUBLE_EQ(scaled.memory_gb, 18);
}

TEST(ResourceBundleTest, Contains) {
  ResourceBundle big{8, 16, 1};
  EXPECT_TRUE(big.Contains({4, 12}));
  EXPECT_TRUE(big.Contains(big));
  EXPECT_FALSE(big.Contains({9, 1}));
  EXPECT_FALSE(big.Contains({1, 1, 2}));
}

TEST(ResourceBundleTest, ToStringMentionsFields) {
  const std::string s = ResourceBundle{1, 2, 3}.ToString();
  EXPECT_NE(s.find("cpu"), std::string::npos);
  EXPECT_NE(s.find("gpu"), std::string::npos);
}

// ---------- ResourcePool ----------

TEST(ResourcePoolTest, FreezeAndRelease) {
  ResourcePool pool({10, 100});
  EXPECT_TRUE(pool.Freeze({4, 40}).ok());
  EXPECT_EQ(pool.available().cpu_cores, 6);
  EXPECT_TRUE(pool.Freeze({6, 60}).ok());
  EXPECT_FALSE(pool.Freeze({1, 1}).ok());  // exhausted
  EXPECT_TRUE(pool.Release({4, 40}).ok());
  EXPECT_TRUE(pool.Freeze({4, 40}).ok());
}

TEST(ResourcePoolTest, FreezeFailureLeavesStateUntouched) {
  ResourcePool pool({2, 2});
  EXPECT_FALSE(pool.Freeze({3, 1}).ok());
  EXPECT_EQ(pool.in_use().cpu_cores, 0);
}

TEST(ResourcePoolTest, OverReleaseClampsAndErrors) {
  ResourcePool pool({4, 4});
  ASSERT_TRUE(pool.Freeze({1, 1}).ok());
  EXPECT_FALSE(pool.Release({2, 2}).ok());
  EXPECT_EQ(pool.in_use().cpu_cores, 0);  // clamped, not negative
}

TEST(ResourcePoolTest, ScaleUpAndDown) {
  ResourcePool pool({4, 8});
  pool.ScaleUp({4, 8});
  EXPECT_EQ(pool.capacity().cpu_cores, 8);
  ASSERT_TRUE(pool.Freeze({6, 10}).ok());
  EXPECT_FALSE(pool.ScaleDown({4, 8}).ok());  // would dip below in-use
  ASSERT_TRUE(pool.Release({6, 10}).ok());
  EXPECT_TRUE(pool.ScaleDown({4, 8}).ok());
  EXPECT_EQ(pool.capacity().cpu_cores, 4);
  EXPECT_FALSE(pool.ScaleDown({100, 0}).ok());  // below zero
}

TEST(ResourcePoolTest, MaxUnitsAvailable) {
  ResourcePool pool({8, 12});
  EXPECT_EQ(pool.MaxUnitsAvailable({1, 1}), 8u);   // limited by cpu
  EXPECT_EQ(pool.MaxUnitsAvailable({1, 3}), 4u);   // limited by memory
  ASSERT_TRUE(pool.Freeze({6, 0}).ok());
  EXPECT_EQ(pool.MaxUnitsAvailable({1, 1}), 2u);
  EXPECT_EQ(pool.MaxUnitsAvailable({0, 0}), 0u);   // degenerate unit
}

// ---------- Cluster / placement groups ----------

TEST(ClusterTest, PlacementPackFillsFirstNode) {
  Cluster cluster(3, {8, 16}, 2);
  auto group = cluster.CreatePlacementGroup({{4, 8}, {4, 8}},
                                            PlacementStrategy::kPack);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->allocations[0].node, NodeId(0));
  EXPECT_EQ(group->allocations[1].node, NodeId(0));
  EXPECT_EQ(cluster.node_pool(0).available().cpu_cores, 0);
}

TEST(ClusterTest, PlacementSpreadRoundRobins) {
  Cluster cluster(3, {8, 16}, 2);
  auto group = cluster.CreatePlacementGroup({{4, 8}, {4, 8}, {4, 8}},
                                            PlacementStrategy::kSpread);
  ASSERT_TRUE(group.ok());
  std::set<std::uint64_t> nodes;
  for (const auto& alloc : group->allocations) nodes.insert(alloc.node.value());
  EXPECT_EQ(nodes.size(), 3u);
}

TEST(ClusterTest, PlacementIsAllOrNothing) {
  Cluster cluster(2, {4, 8}, 2);
  // Second bundle cannot fit anywhere: whole group must fail and release.
  auto group = cluster.CreatePlacementGroup({{4, 8}, {5, 1}});
  EXPECT_FALSE(group.ok());
  EXPECT_EQ(group.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(cluster.TotalAvailable().cpu_cores, 8.0);
}

TEST(ClusterTest, RemovePlacementGroupIsIdempotent) {
  Cluster cluster(1, {8, 16}, 2);
  auto group = cluster.CreatePlacementGroup({{8, 16}});
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(cluster.RemovePlacementGroup(*group).ok());
  EXPECT_TRUE(cluster.RemovePlacementGroup(*group).ok());  // second: no-op
  EXPECT_DOUBLE_EQ(cluster.TotalAvailable().cpu_cores, 8.0);
}

TEST(ClusterTest, EmptyGroupRejected) {
  Cluster cluster(1, {8, 16}, 2);
  EXPECT_FALSE(cluster.CreatePlacementGroup({}).ok());
}

TEST(ClusterTest, CapacityAccounting) {
  Cluster cluster(4, {10, 20}, 2);
  EXPECT_DOUBLE_EQ(cluster.TotalCapacity().cpu_cores, 40.0);
  EXPECT_DOUBLE_EQ(cluster.TotalCapacity().memory_gb, 80.0);
}

// ---------- Actor ----------

TEST(ActorTest, ExecutesTasksInSubmissionOrder) {
  Cluster cluster(1, {8, 16}, 4);
  auto group = cluster.CreatePlacementGroup({{4, 8}});
  ASSERT_TRUE(group.ok());
  auto actor = cluster.CreateActor(group->allocations[0]);

  std::vector<int> order;
  std::mutex mutex;
  for (int i = 0; i < 50; ++i) {
    actor->Submit([&, i] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    });
  }
  actor->Drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(actor->tasks_executed(), 50u);
}

TEST(ActorTest, DistinctActorsRunConcurrently) {
  Cluster cluster(1, {8, 16}, 4);
  auto group = cluster.CreatePlacementGroup({{2, 4}, {2, 4}});
  ASSERT_TRUE(group.ok());
  auto a = cluster.CreateActor(group->allocations[0]);
  auto b = cluster.CreateActor(group->allocations[1]);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    a->Submit([&] { done++; });
    b->Submit([&] { done++; });
  }
  a->Drain();
  b->Drain();
  EXPECT_EQ(done.load(), 40);
}

TEST(ActorTest, FutureResolvesAfterExecution) {
  Cluster cluster(1, {8, 16}, 2);
  auto group = cluster.CreatePlacementGroup({{1, 1}});
  ASSERT_TRUE(group.ok());
  auto actor = cluster.CreateActor(group->allocations[0]);
  int value = 0;
  auto f = actor->Submit([&] { value = 99; });
  f.get();
  EXPECT_EQ(value, 99);
}

// ---------- RayRunner ----------

TEST(RayRunnerTest, RunsAllDevicesRoundRobin) {
  Cluster cluster(2, {8, 16}, 4);
  RayRunner runner(cluster);
  std::atomic<int> devices_run{0};
  JobSpec spec;
  spec.num_devices = 103;
  spec.num_actors = 4;
  spec.per_actor = {2, 4};
  spec.device_fn = [&](std::size_t) { devices_run++; };
  auto result = runner.SubmitJob(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(devices_run.load(), 103);
  EXPECT_EQ(result->actors_used, 4u);
  // Round-robin: 103 = 26 + 26 + 26 + 25.
  EXPECT_EQ(result->devices_per_actor[0], 26u);
  EXPECT_EQ(result->devices_per_actor[3], 25u);
  // Resources released after the job.
  EXPECT_DOUBLE_EQ(cluster.TotalAvailable().cpu_cores, 16.0);
}

TEST(RayRunnerTest, ActorSetupRunsOncePerActor) {
  Cluster cluster(1, {8, 16}, 4);
  RayRunner runner(cluster);
  std::atomic<int> setups{0};
  JobSpec spec;
  spec.num_devices = 10;
  spec.num_actors = 3;
  spec.per_actor = {1, 1};
  spec.actor_setup = [&](std::size_t) { setups++; };
  spec.device_fn = [](std::size_t) {};
  ASSERT_TRUE(runner.SubmitJob(spec).ok());
  EXPECT_EQ(setups.load(), 3);
}

TEST(RayRunnerTest, RejectsInvalidSpecs) {
  Cluster cluster(1, {8, 16}, 2);
  RayRunner runner(cluster);
  JobSpec spec;
  spec.num_devices = 0;
  spec.num_actors = 1;
  spec.per_actor = {1, 1};
  spec.device_fn = [](std::size_t) {};
  EXPECT_FALSE(runner.SubmitJob(spec).ok());
  spec.num_devices = 5;
  spec.num_actors = 0;
  EXPECT_FALSE(runner.SubmitJob(spec).ok());
  spec.num_actors = 1;
  spec.device_fn = nullptr;
  EXPECT_FALSE(runner.SubmitJob(spec).ok());
}

TEST(RayRunnerTest, FailsWhenClusterTooSmall) {
  Cluster cluster(1, {4, 8}, 2);
  RayRunner runner(cluster);
  JobSpec spec;
  spec.num_devices = 10;
  spec.num_actors = 2;
  spec.per_actor = {4, 8};  // two of these cannot fit on one 4-core node
  spec.device_fn = [](std::size_t) {};
  auto result = runner.SubmitJob(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kResourceExhausted);
  // Nothing leaked.
  EXPECT_DOUBLE_EQ(cluster.TotalAvailable().cpu_cores, 4.0);
}

}  // namespace
}  // namespace simdc::actor
