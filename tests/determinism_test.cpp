// Determinism suite for parallel federated rounds: the
// FlExperimentConfig::parallelism knob must never change results, only
// wall time. Each client trains from its own seed-derived RNG stream into
// a dedicated slot, and updates are reduced in fixed client-index order on
// the event loop, so runs at any worker count are bit-for-bit identical.
#include <gtest/gtest.h>

#include <cstring>

#include "cloud/payload_decoder.h"
#include "core/fl_engine.h"
#include "core/platform.h"
#include "data/synth_avazu.h"
#include "flow/rate_functions.h"
#include "flow/shard_merger.h"

namespace simdc::core {
namespace {

data::FederatedDataset Dataset(std::size_t devices = 120) {
  data::SynthConfig config;
  config.num_devices = devices;
  config.records_per_device_mean = 12;
  config.num_test_devices = 10;
  config.hash_dim = 1u << 12;
  config.seed = 33;
  return data::GenerateSyntheticAvazu(config);
}

FlExperimentConfig BaseConfig() {
  FlExperimentConfig config;
  config.rounds = 3;
  config.train.learning_rate = 0.05;
  config.train.epochs = 2;
  config.logical_fraction = 0.5;  // both kernels in play
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(30.0);
  config.seed = 7;
  return config;
}

FlRunResult RunWith(const data::FederatedDataset& dataset,
                    FlExperimentConfig config, std::size_t parallelism) {
  sim::EventLoop loop;
  config.parallelism = parallelism;
  FlEngine engine(loop, dataset, std::move(config));
  return engine.Run();
}

/// Bit-level equality: EXPECT_EQ on doubles is value equality, which is
/// what we want everywhere except the (impossible here) NaN case; weights
/// are compared as raw float vectors.
void ExpectIdentical(const FlRunResult& a, const FlRunResult& b,
                     std::size_t parallelism) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << "parallelism=" << parallelism;
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].round, b.rounds[i].round);
    EXPECT_EQ(a.rounds[i].time, b.rounds[i].time);
    EXPECT_EQ(a.rounds[i].clients, b.rounds[i].clients);
    EXPECT_EQ(a.rounds[i].samples, b.rounds[i].samples);
    EXPECT_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy);
    EXPECT_EQ(a.rounds[i].test_logloss, b.rounds[i].test_logloss);
    EXPECT_EQ(a.rounds[i].train_accuracy, b.rounds[i].train_accuracy);
    EXPECT_EQ(a.rounds[i].train_logloss, b.rounds[i].train_logloss);
  }
  EXPECT_EQ(a.messages_emitted, b.messages_emitted);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  EXPECT_EQ(0, std::memcmp(a.final_weights.data(), b.final_weights.data(),
                           a.final_weights.size() * sizeof(float)))
      << "parallelism=" << parallelism;
  EXPECT_EQ(a.final_bias, b.final_bias) << "parallelism=" << parallelism;
}

TEST(DeterminismTest, ParallelRunsBitIdenticalToSequential) {
  const auto dataset = Dataset();
  const auto sequential = RunWith(dataset, BaseConfig(), 1);
  ASSERT_EQ(sequential.rounds.size(), 3u);
  for (const std::size_t parallelism : {2u, 4u, 8u}) {
    const auto parallel = RunWith(dataset, BaseConfig(), parallelism);
    ExpectIdentical(sequential, parallel, parallelism);
  }
}

TEST(DeterminismTest, DropoutAndPartialParticipationUnaffectedByWorkers) {
  // Dropout draws and participant sampling run on the event loop / round
  // RNG streams, never on worker threads — so they too must be invariant.
  const auto dataset = Dataset();
  auto config = BaseConfig();
  config.participants_per_round = 40;
  config.strategy = flow::RealtimeAccumulated{{1}, 0.3};
  const auto sequential = RunWith(dataset, config, 1);
  EXPECT_GT(sequential.messages_dropped, 0u);
  for (const std::size_t parallelism : {2u, 4u, 8u}) {
    ExpectIdentical(sequential, RunWith(dataset, config, parallelism),
                    parallelism);
  }
}

TEST(DeterminismTest, BatchedDeliveryBitIdenticalToPerMessageAtAllWidths) {
  // The message-plane rework (one MessageBatch event per dispatch tick
  // instead of one closure per message) must not change a single bit of
  // the run — at any parallelism. Exercise real multi-message batches
  // (threshold 5) with dropout, plus a sample-threshold trigger so rounds
  // close *inside* delivery ticks.
  const auto dataset = Dataset();
  auto config = BaseConfig();
  config.strategy = flow::RealtimeAccumulated{{5}, 0.2};
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 400;

  auto run = [&](flow::DeliveryMode mode, std::size_t parallelism) {
    auto c = config;
    c.delivery_mode = mode;
    return RunWith(dataset, c, parallelism);
  };
  const auto reference = run(flow::DeliveryMode::kPerMessage, 1);
  ASSERT_EQ(reference.rounds.size(), 3u);
  EXPECT_GT(reference.messages_dropped, 0u);
  for (const std::size_t parallelism : {1u, 2u, 4u, 8u}) {
    ExpectIdentical(reference, run(flow::DeliveryMode::kBatched, parallelism),
                    parallelism);
    ExpectIdentical(reference,
                    run(flow::DeliveryMode::kPerMessage, parallelism),
                    parallelism);
  }
}

// ---------- Sharded fleets ----------

/// Everything a sharded run must keep bit-identical across widths:
/// FlRunResult (round metrics incl. arrival-derived times, weights),
/// the merged dispatch stats (arrival ticks, drops, sends), and the
/// cloud-side admission counters.
struct ShardedOutcome {
  FlRunResult result;
  flow::DispatchStats stats;
  std::size_t messages_received = 0;
  std::size_t decode_failures = 0;
  std::size_t stale_rejections = 0;
};

FlExperimentConfig ShardableConfig() {
  auto config = BaseConfig();
  // Pass-through ticks + a disengaged rate limiter are the width-invariant
  // regime (see FlExperimentConfig::shards); message-keyed transmission
  // drops exercise the dropout plane.
  config.strategy = flow::RealtimeAccumulated{
      {1}, 0.25, flow::kShardWidthInvariantCapacity};
  return config;
}

ShardedOutcome RunShardedWith(const data::FederatedDataset& dataset,
                              FlExperimentConfig config, std::size_t shards,
                              std::size_t parallelism = 1) {
  sim::EventLoop loop;
  config.shards = shards;
  config.parallelism = parallelism;
  FlEngine engine(loop, dataset, std::move(config));
  ShardedOutcome out;
  out.result = engine.Run();
  out.stats = engine.dispatch_stats();
  out.messages_received = engine.aggregation().messages_received();
  out.decode_failures = engine.aggregation().decode_failures();
  out.stale_rejections = engine.aggregation().stale_rejections();
  return out;
}

void ExpectStatsIdentical(const flow::DispatchStats& a,
                          const flow::DispatchStats& b, std::size_t shards) {
  EXPECT_EQ(a.received, b.received) << "shards=" << shards;
  EXPECT_EQ(a.sent, b.sent) << "shards=" << shards;
  EXPECT_EQ(a.dropped, b.dropped) << "shards=" << shards;
  EXPECT_EQ(a.retries, b.retries) << "shards=" << shards;
  EXPECT_EQ(a.retry_successes, b.retry_successes) << "shards=" << shards;
  EXPECT_EQ(a.deadline_drops, b.deadline_drops) << "shards=" << shards;
  EXPECT_EQ(a.churn_losses, b.churn_losses) << "shards=" << shards;
  EXPECT_EQ(a.batches, b.batches) << "shards=" << shards;
  EXPECT_EQ(a.batch_keys, b.batch_keys) << "shards=" << shards;
  EXPECT_EQ(a.batches_truncated, b.batches_truncated) << "shards=" << shards;
}

void ExpectCountersIdentical(const ShardedOutcome& a, const ShardedOutcome& b,
                             std::size_t shards) {
  EXPECT_EQ(a.messages_received, b.messages_received) << "shards=" << shards;
  EXPECT_EQ(a.decode_failures, b.decode_failures) << "shards=" << shards;
  EXPECT_EQ(a.stale_rejections, b.stale_rejections) << "shards=" << shards;
}

TEST(ShardedDeterminismTest, WidthsBitIdenticalToUnshardedScheduled) {
  // Scheduled aggregation: rounds close on the cloud plane while uploads
  // stream through per-shard dispatchers. shards=1 takes the unsharded
  // code path (single loop, no merger) and is the reference.
  const auto dataset = Dataset();
  const auto reference = RunShardedWith(dataset, ShardableConfig(), 1);
  ASSERT_EQ(reference.result.rounds.size(), 3u);
  EXPECT_GT(reference.result.messages_dropped, 0u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const auto sharded = RunShardedWith(dataset, ShardableConfig(), shards);
    ExpectIdentical(reference.result, sharded.result, shards);
    ExpectStatsIdentical(reference.stats, sharded.stats, shards);
  }
}

TEST(ShardedDeterminismTest, WidthsBitIdenticalUnderThresholdTrigger) {
  // Sample-threshold rounds close INSIDE merged delivery ticks, and the
  // round timestamp is the triggering message's arrival — so this case
  // asserts arrival-stamp identity, not just final weights. Staleness
  // rejection makes the message→round assignment observable too.
  const auto dataset = Dataset();
  auto config = ShardableConfig();
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 400;
  config.reject_stale = true;
  const auto reference = RunShardedWith(dataset, config, 1);
  ASSERT_EQ(reference.result.rounds.size(), 3u);
  EXPECT_GT(reference.result.messages_dropped, 0u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const auto sharded = RunShardedWith(dataset, config, shards);
    ExpectIdentical(reference.result, sharded.result, shards);
    ExpectStatsIdentical(reference.stats, sharded.stats, shards);
  }
}

TEST(ShardedDeterminismTest, PerMessageDeliveryMatchesBatchedAtAllWidths) {
  // The PR-3 delivery-mode contract must survive sharding: per-message
  // and batched shard dispatchers produce the same merged stream.
  const auto dataset = Dataset();
  const auto reference = RunShardedWith(dataset, ShardableConfig(), 1);
  for (const std::size_t shards : {2u, 4u}) {
    auto config = ShardableConfig();
    config.delivery_mode = flow::DeliveryMode::kPerMessage;
    const auto sharded = RunShardedWith(dataset, config, shards);
    ExpectIdentical(reference.result, sharded.result, shards);
    ExpectStatsIdentical(reference.stats, sharded.stats, shards);
  }
}

TEST(ShardedDeterminismTest, PoolAdvancedShardsMatchSequential) {
  // Shard loops advance on the training pool when parallelism provides
  // one; worker scheduling must never leak into results. Also exercises
  // partial participation so shard participant subsets vary per round.
  const auto dataset = Dataset();
  auto config = ShardableConfig();
  config.participants_per_round = 80;
  const auto sequential = RunShardedWith(dataset, config, 4, /*parallelism=*/1);
  EXPECT_GT(sequential.result.messages_dropped, 0u);
  for (const std::size_t parallelism : {2u, 4u, 8u}) {
    const auto pooled = RunShardedWith(dataset, config, 4, parallelism);
    ExpectIdentical(sequential.result, pooled.result, parallelism);
    ExpectStatsIdentical(sequential.stats, pooled.stats, parallelism);
  }
  // And the pooled sharded run still equals the unsharded reference.
  const auto reference = RunShardedWith(dataset, config, 1);
  ExpectIdentical(reference.result, sequential.result, 4);
}

TEST(ShardedDeterminismTest, SimultaneousUploadsStayWidthInvariant) {
  // Worst case for arrival stamping: EVERY device uploads at the same
  // microsecond. A finite capacity would serialize those collisions per
  // dispatcher (+1us steps), stamping them differently at each width;
  // the infinite-capacity regime gives zero serialization delay, so the
  // contract must hold even here. Threshold trigger makes the arrivals
  // observable as round timestamps.
  const auto dataset = Dataset();
  auto config = ShardableConfig();
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 500;
  config.delay_fn = [](const data::DeviceData&, std::size_t, Rng&) {
    return Seconds(1.0);  // identical for every device, every round
  };
  const auto reference = RunShardedWith(dataset, config, 1);
  ASSERT_EQ(reference.result.rounds.size(), 3u);
  EXPECT_GT(reference.result.messages_dropped, 0u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const auto sharded = RunShardedWith(dataset, config, shards);
    ExpectIdentical(reference.result, sharded.result, shards);
    ExpectStatsIdentical(reference.stats, sharded.stats, shards);
  }
}

TEST(ShardedDeterminismTest, MultiMessageTicksDeterministicAtFixedWidth) {
  // Outside the width-invariance regime — multi-message thresholds and a
  // finite (default 700/s) capacity — sharded runs must still be fully
  // deterministic at a fixed width, round-start pumps must stamp at the
  // round time (never a lockstep-barrier artifact behind it), and round
  // timestamps must stay monotone.
  const auto dataset = Dataset();
  auto config = BaseConfig();
  config.strategy = flow::RealtimeAccumulated{{20, 100, 50}, 0.15};
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 400;
  const auto first = RunShardedWith(dataset, config, 4);
  const auto again = RunShardedWith(dataset, config, 4);
  ExpectIdentical(first.result, again.result, 4);
  ExpectStatsIdentical(first.stats, again.stats, 4);
  ASSERT_EQ(first.result.rounds.size(), 3u);
  SimTime last = 0;
  for (const auto& round : first.result.rounds) {
    EXPECT_GE(round.time, last);
    last = round.time;
  }
}

TEST(ShardedDeterminismTest, DecodedPlaneBitIdenticalToLegacyAtAllWidths) {
  // The decoded payload plane moves blob fetch + LrModel decode from the
  // serial AggregationService into the dispatch ticks (shard workers when
  // sharded). Against the legacy decode-in-handler plane, every bit of
  // the run — round metrics, weights, merged dispatch stats, admission
  // counters — must be identical at every shard width. reject_stale plus
  // a sample threshold makes the message→round admission (and therefore
  // the deferred-accounting order) observable.
  const auto dataset = Dataset();
  auto config = ShardableConfig();
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 400;
  config.reject_stale = true;

  auto legacy_config = config;
  legacy_config.decode_plane = flow::DecodePlane::kLegacy;
  const auto reference = RunShardedWith(dataset, legacy_config, 1);
  ASSERT_EQ(reference.result.rounds.size(), 3u);
  EXPECT_GT(reference.result.messages_dropped, 0u);
  EXPECT_GT(reference.stale_rejections, 0u);
  EXPECT_EQ(reference.decode_failures, 0u);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    auto decoded_config = config;
    decoded_config.decode_plane = flow::DecodePlane::kDecoded;
    const auto decoded = RunShardedWith(dataset, decoded_config, shards);
    ExpectIdentical(reference.result, decoded.result, shards);
    ExpectStatsIdentical(reference.stats, decoded.stats, shards);
    ExpectCountersIdentical(reference, decoded, shards);
    // And legacy stays self-consistent at the same width.
    const auto legacy = RunShardedWith(dataset, legacy_config, shards);
    ExpectIdentical(reference.result, legacy.result, shards);
    ExpectCountersIdentical(reference, legacy, shards);
  }
}

TEST(ShardedDeterminismTest, PartialSumPlaneBitIdenticalToLegacyAtAllWidths) {
  // The partial-sum aggregation plane stages decoded updates and
  // accumulates them into per-lane partial aggregators on the worker pool,
  // merged in fixed ascending order. Against aggregate_plane = legacy
  // (inline serial adds), every bit of the run must be identical at every
  // shard width — the FedAvg cascade is order-invariant, so regrouping the
  // weighted sum is invisible. reject_stale + a sample threshold makes the
  // admission order observable (a mid-batch round close changes later
  // staleness verdicts), pinning the staged trigger point too.
  const auto dataset = Dataset();
  auto config = ShardableConfig();
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 400;
  config.reject_stale = true;
  config.decode_plane = flow::DecodePlane::kDecoded;

  auto legacy_config = config;
  legacy_config.aggregate_plane = cloud::AggregatePlane::kLegacy;
  const auto reference = RunShardedWith(dataset, legacy_config, 1);
  ASSERT_EQ(reference.result.rounds.size(), 3u);
  EXPECT_GT(reference.result.messages_dropped, 0u);
  EXPECT_GT(reference.stale_rejections, 0u);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    auto partial_config = config;
    partial_config.aggregate_plane = cloud::AggregatePlane::kPartialSum;
    const auto partial = RunShardedWith(dataset, partial_config, shards);
    ExpectIdentical(reference.result, partial.result, shards);
    ExpectStatsIdentical(reference.stats, partial.stats, shards);
    ExpectCountersIdentical(reference, partial, shards);
    // And the legacy aggregate plane stays self-consistent at this width.
    const auto legacy = RunShardedWith(dataset, legacy_config, shards);
    ExpectIdentical(reference.result, legacy.result, shards);
    ExpectCountersIdentical(reference, legacy, shards);
  }
}

// ---------- Decode-failure accounting parity (flow-level harness) ----------

/// Outcome of pushing a hand-built message stream — valid, corrupt-blob,
/// missing-blob, stale and stale-with-bad-payload messages — through
/// dispatchers + shard merger into one AggregationService.
struct FailurePlaneOutcome {
  std::size_t received = 0;
  std::size_t decode_failures = 0;
  std::size_t stale_rejections = 0;
  std::size_t rounds = 0;
  std::vector<float> weights;
};

/// Runs the failure-mix stream at the given shard width on either payload
/// plane. Messages carry distinct timestamps and globally ordered ids, so
/// the (tick time, first id, shard) merge reproduces one canonical
/// delivery order at every width — counters must not depend on width or
/// plane.
FailurePlaneOutcome RunFailureMix(std::size_t shards, bool decoded_plane) {
  constexpr std::uint32_t kDim = 16;
  constexpr std::size_t kMessages = 24;
  sim::EventLoop cloud_loop;
  cloud::BlobStore store;
  cloud::AggregationConfig agg;
  agg.model_dim = kDim;
  agg.trigger = cloud::AggregationTrigger::kSampleThreshold;
  agg.sample_threshold = 30;  // fires mid-stream: later round-0 msgs stale
  agg.reject_stale = true;
  cloud::AggregationService service(cloud_loop, store, agg);
  cloud::BlobModelDecoder decoder(store);

  flow::ShardMerger merger(shards, &service, &cloud_loop);
  std::vector<std::unique_ptr<sim::EventLoop>> loops;
  std::vector<std::unique_ptr<flow::Dispatcher>> dispatchers;
  for (std::size_t s = 0; s < shards; ++s) {
    loops.push_back(std::make_unique<sim::EventLoop>());
    dispatchers.push_back(std::make_unique<flow::Dispatcher>(
        *loops[s], TaskId(1),
        flow::RealtimeAccumulated{{1}, 0.0,
                                  flow::kShardWidthInvariantCapacity},
        &merger.channel(s), /*seed=*/11));
    if (decoded_plane) dispatchers[s]->set_decoder(&decoder);
  }

  for (std::size_t i = 0; i < kMessages; ++i) {
    flow::Message m;
    m.id = MessageId(i + 1);
    m.task = TaskId(1);
    m.device = DeviceId(i + 1);
    m.sample_count = 5;
    switch (i % 6) {
      case 1:  // corrupt blob, fresh round
        m.payload = store.Put({std::byte{0x42}});
        break;
      case 2:  // missing blob, fresh round
        m.payload = BlobId(900000 + i);
        break;
      case 3: {  // valid payload but a round that is always stale
        ml::LrModel model(kDim);
        model.weights()[0] = static_cast<float>(i);
        m.round = 77;
        m.payload = store.Put(model.ToBytes());
        break;
      }
      case 4:  // corrupt blob AND always-stale round: must count stale
        m.round = 99;
        m.payload = store.Put({std::byte{0x01}, std::byte{0x02}});
        break;
      default: {  // valid, round 0 (stale once the threshold fires)
        ml::LrModel model(kDim);
        model.weights()[0] = static_cast<float>(i) * 0.5f;
        m.payload = store.Put(model.ToBytes());
        break;
      }
    }
    // Contiguous ranges, like data::PartitionDevices for equal blocks.
    const std::size_t per_shard = (kMessages + shards - 1) / shards;
    const std::size_t target = std::min(i / per_shard, shards - 1);
    flow::Dispatcher* dispatcher = dispatchers[target].get();
    loops[target]->ScheduleAt(
        Seconds(static_cast<double>(i + 1)),
        [dispatcher, m]() mutable { dispatcher->OnMessage(std::move(m)); });
  }
  for (auto& loop : loops) loop->Run();
  merger.DrainUpTo(Seconds(static_cast<double>(kMessages + 1)));

  FailurePlaneOutcome out;
  out.received = service.messages_received();
  out.decode_failures = service.decode_failures();
  out.stale_rejections = service.stale_rejections();
  out.rounds = service.rounds_completed();
  out.weights.assign(service.global_model().weights().begin(),
                     service.global_model().weights().end());
  return out;
}

TEST(ShardedDeterminismTest, DecodeFailureAccountingParityAcrossPlanes) {
  // Corrupt-blob and missing-blob messages — fresh and stale — must book
  // the same decode_failures / stale_rejections on the decoded plane, the
  // legacy plane, and every sharded merge of either, in the same order
  // (the deferred-accounting contract of flow::DecodedUpdate).
  const auto reference = RunFailureMix(1, /*decoded_plane=*/false);
  // The mix by construction: 4 corrupt/missing fresh-round failures
  // become decode failures only while their round is fresh; round-77/99
  // messages and post-aggregation round-0 messages are stale.
  EXPECT_GT(reference.decode_failures, 0u);
  EXPECT_GT(reference.stale_rejections, 0u);
  EXPECT_EQ(reference.received, 24u);
  EXPECT_GE(reference.rounds, 1u);

  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const bool decoded : {false, true}) {
      if (shards == 1 && !decoded) continue;  // the reference itself
      const auto outcome = RunFailureMix(shards, decoded);
      EXPECT_EQ(outcome.received, reference.received)
          << "shards=" << shards << " decoded=" << decoded;
      EXPECT_EQ(outcome.decode_failures, reference.decode_failures)
          << "shards=" << shards << " decoded=" << decoded;
      EXPECT_EQ(outcome.stale_rejections, reference.stale_rejections)
          << "shards=" << shards << " decoded=" << decoded;
      EXPECT_EQ(outcome.rounds, reference.rounds)
          << "shards=" << shards << " decoded=" << decoded;
      ASSERT_EQ(outcome.weights.size(), reference.weights.size());
      EXPECT_EQ(0, std::memcmp(outcome.weights.data(),
                               reference.weights.data(),
                               reference.weights.size() * sizeof(float)))
          << "shards=" << shards << " decoded=" << decoded;
    }
  }
}

TEST(ShardedDeterminismTest, ShardCountClampsToDevices) {
  // More fleets than devices must degrade gracefully to one device per
  // fleet, still bit-identical to the unsharded run.
  const auto dataset = Dataset(6);
  auto config = ShardableConfig();
  config.rounds = 2;
  const auto reference = RunShardedWith(dataset, config, 1);
  sim::EventLoop loop;
  auto wide = config;
  wide.shards = 64;
  wide.parallelism = 1;
  FlEngine engine(loop, dataset, wide);
  EXPECT_EQ(engine.shards(), 6u);
  const auto result = engine.Run();
  ExpectIdentical(reference.result, result, 64);
}

TEST(DeterminismTest, PlatformPoolMatchesPrivatePool) {
  // parallelism = 0 inherits the platform's shared pool; the result must
  // equal both the sequential run and a privately-pooled run.
  const auto dataset = Dataset(60);
  auto config = BaseConfig();
  config.rounds = 2;

  PlatformConfig platform_config;
  platform_config.worker_threads = 3;
  Platform platform(platform_config);
  auto inherited_config = config;
  inherited_config.parallelism = 0;
  const auto inherited = platform.RunFlExperiment(dataset, inherited_config);

  const auto sequential = RunWith(dataset, config, 1);
  ExpectIdentical(sequential, inherited, 0);
}

TEST(DeterminismTest, EngineOwnsPoolWhenWidthDiffers) {
  // A caller pool of the "wrong" width must not leak into training when
  // the experiment pins a different parallelism.
  const auto dataset = Dataset(60);
  auto config = BaseConfig();
  config.rounds = 2;
  ThreadPool caller_pool(2);

  auto run_with_pool = [&](std::size_t parallelism) {
    sim::EventLoop loop;
    auto pinned = config;
    pinned.parallelism = parallelism;
    FlEngine engine(loop, dataset, pinned, &caller_pool);
    return engine.Run();
  };
  const auto sequential = RunWith(dataset, config, 1);
  ExpectIdentical(sequential, run_with_pool(1), 1);   // knob forces sequential
  ExpectIdentical(sequential, run_with_pool(2), 2);   // matches caller pool
  ExpectIdentical(sequential, run_with_pool(5), 5);   // private 5-wide pool
}

}  // namespace
}  // namespace simdc::core
