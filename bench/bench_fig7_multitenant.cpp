// Multi-tenant scheduling ladder (the concurrency companion to Fig. 7).
//
// Runs 1 -> 10 -> 100 concurrent FL tasks on one shared fleet through
// MultiTenantEngine with MIXED per-task policies — dropout probability,
// link retry/backoff and quorum/deadline knobs all vary tenant by tenant —
// and hard-gates, at every rung:
//   · per-task FlRunResult bit-identity across shard widths 1/2/4/8
//     (admission timeline included: width must not move a single admit);
//   · per-task bit-identity against the same task run SOLO in sequence,
//     valid because every rung is provisioned contention-free.
// A single diverging bit fails the bench. On top of the gates it prints the
// per-task SLA rows the scheduling plane exists to produce: queue wait,
// makespan, round-latency percentiles and fault-plane counters.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fl_engine.h"
#include "core/multi_tenant.h"
#include "data/synth_avazu.h"

namespace {

using namespace simdc;

/// Mixed per-tenant policy: dropout varies with id % 3, every even id runs
/// a lossy retrying link, every third id a quorum/deadline round policy.
/// All of it stays in the width-invariant flow regime (pass-through ticks,
/// disengaged limiter) so the shard-width gate is meaningful.
core::FlExperimentConfig TenantFl(std::uint64_t id, std::size_t rounds) {
  core::FlExperimentConfig config;
  config.task = TaskId(id);
  config.rounds = rounds;
  config.train.learning_rate = 0.05;
  config.train.epochs = 1;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(30.0);
  config.strategy = flow::RealtimeAccumulated{
      {1}, static_cast<double>(id % 3) * 0.1,
      flow::kShardWidthInvariantCapacity};
  config.seed = 1000 + id;
  if (id % 2 == 0) {
    config.link.transient_failure_probability = 0.3;
    config.link.max_attempts = 3;
    config.link.backoff_initial = Seconds(2.0);
    config.link.backoff_multiplier = 2.0;
    config.link.backoff_max = Seconds(20.0);
    config.link.upload_deadline = Seconds(25.0);
  }
  if (id % 3 == 0) {
    config.round_quorum = 5;
    config.round_deadline = Seconds(60.0);
    config.round_extension = Seconds(20.0);
    config.max_round_extensions = 1;
  }
  return config;
}

core::TenantTask MakeTenant(std::uint64_t id, std::size_t rounds,
                            const data::FederatedDataset& dataset) {
  core::TenantTask task;
  task.spec.id = TaskId(id);
  task.spec.name = "tenant-" + std::to_string(id);
  task.spec.priority = static_cast<int>(id % 7);
  task.spec.rounds = rounds;
  sched::DeviceRequirement requirement;
  requirement.grade = device::DeviceGrade::kHigh;
  requirement.num_devices = 40;
  requirement.phones = 2;
  requirement.logical_bundles = 10;
  task.spec.requirements.push_back(requirement);
  task.fl = TenantFl(id, rounds);
  task.dataset = &dataset;
  return task;
}

struct RungRun {
  std::vector<core::TenantResult> results;
  std::size_t peak_active = 0;
  std::size_t admission_passes = 0;
};

RungRun RunMulti(std::size_t tasks, std::size_t rounds, std::size_t width,
                 const data::FederatedDataset& dataset) {
  sim::EventLoop loop;
  // 1000 phones per grade and 10k bundles: contention-free at every rung
  // (100 tenants demand 200 phones / 1000 bundles), so the solo gate holds.
  sched::ResourceManager resources(10000, {1000, 1000});
  core::MultiTenantEngine engine(loop, resources);
  for (std::uint64_t id = 1; id <= tasks; ++id) {
    core::TenantTask task = MakeTenant(id, rounds, dataset);
    task.fl.shards = width;
    if (!engine.Submit(std::move(task)).ok()) std::abort();
  }
  RungRun run;
  run.results = engine.Run();
  run.peak_active = engine.peak_active_tenants();
  run.admission_passes = engine.admission_passes();
  return run;
}

bool Identical(const core::TenantResult& a, const core::TenantResult& b) {
  const core::FlRunResult& ra = a.result;
  const core::FlRunResult& rb = b.result;
  if (ra.rounds.size() != rb.rounds.size()) return false;
  for (std::size_t i = 0; i < ra.rounds.size(); ++i) {
    if (ra.rounds[i].time != rb.rounds[i].time ||
        ra.rounds[i].clients != rb.rounds[i].clients ||
        ra.rounds[i].samples != rb.rounds[i].samples ||
        ra.rounds[i].test_accuracy != rb.rounds[i].test_accuracy ||
        ra.rounds[i].test_logloss != rb.rounds[i].test_logloss ||
        ra.rounds[i].train_accuracy != rb.rounds[i].train_accuracy ||
        ra.rounds[i].train_logloss != rb.rounds[i].train_logloss) {
      return false;
    }
  }
  if (ra.messages_emitted != rb.messages_emitted ||
      ra.messages_dropped != rb.messages_dropped ||
      ra.skipped_unavailable != rb.skipped_unavailable ||
      ra.rounds_degraded != rb.rounds_degraded ||
      ra.rounds_aborted != rb.rounds_aborted ||
      ra.final_bias != rb.final_bias ||
      ra.final_weights.size() != rb.final_weights.size() ||
      std::memcmp(ra.final_weights.data(), rb.final_weights.data(),
                  ra.final_weights.size() * sizeof(float)) != 0) {
    return false;
  }
  // SLA row, admission timeline included: a different shard width must not
  // move a single admit/complete tick or fault-plane counter.
  const core::TaskSlaReport& sa = a.sla;
  const core::TaskSlaReport& sb = b.sla;
  return sa.rounds == sb.rounds && sa.retries == sb.retries &&
         sa.deadline_drops == sb.deadline_drops &&
         sa.churn_losses == sb.churn_losses &&
         sa.rounds_degraded == sb.rounds_degraded &&
         sa.rounds_extended == sb.rounds_extended &&
         sa.submitted == sb.submitted && sa.admitted == sb.admitted &&
         sa.completed == sb.completed;
}

core::TenantResult SoloResult(std::uint64_t id, std::size_t rounds,
                              const data::FederatedDataset& dataset) {
  sim::EventLoop loop;
  core::FlExperimentConfig config = TenantFl(id, rounds);
  config.shards = 1;
  core::FlEngine engine(loop, dataset, std::move(config));
  core::TenantResult solo;
  solo.result = engine.Run();
  return solo;
}

/// Solo equality ignores the admission timeline (a solo run has none).
bool MatchesSolo(const core::TenantResult& tenant,
                 const core::TenantResult& solo) {
  core::TenantResult masked = tenant;
  masked.sla = core::TaskSlaReport{};
  return Identical(masked, solo);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Multi-tenant scheduling ladder — 1/10/100 concurrent tasks, mixed\n"
      "per-task policies (dropout x link retries x quorum), every rung\n"
      "gated bit-identical at shard widths 1/2/4/8 and vs solo-in-sequence");

  data::SynthConfig data_config;
  data_config.num_devices = 40;
  data_config.records_per_device_mean = 10;
  data_config.num_test_devices = 8;
  data_config.hash_dim = 1u << 10;
  data_config.seed = 33;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  const std::size_t rungs[] = {1, 10, 100};
  const std::size_t widths[] = {2, 4, 8};

  std::printf("\n%6s %5s %6s | %8s %8s %8s %8s | %9s %6s %5s\n", "tasks",
              "peak", "passes", "retries", "deadl", "degr", "p95max",
              "makespan", "widths", "solo");
  bench::PrintRule();

  bool widths_identical = true;
  bool solo_identical = true;
  for (const std::size_t tasks : rungs) {
    const std::size_t rounds = tasks >= 100 ? 1 : 2;
    RungRun reference;
    {
      bench::ScopedOpTimer timer("fig7_multitenant_" + std::to_string(tasks));
      reference = RunMulti(tasks, rounds, 1, dataset);
    }
    bool rung_widths = reference.results.size() == tasks;
    for (const std::size_t width : widths) {
      const RungRun sharded = RunMulti(tasks, rounds, width, dataset);
      if (sharded.results.size() != reference.results.size()) {
        rung_widths = false;
        continue;
      }
      for (std::size_t i = 0; i < reference.results.size(); ++i) {
        if (!Identical(reference.results[i], sharded.results[i])) {
          rung_widths = false;
        }
      }
    }
    bool rung_solo = true;
    std::uint64_t retries = 0, deadline_drops = 0;
    std::size_t degraded = 0;
    double p95_max = 0.0, makespan = 0.0;
    for (const core::TenantResult& tenant : reference.results) {
      if (!tenant.completed) rung_solo = false;
      const auto solo =
          SoloResult(tenant.id.value(), rounds, dataset);
      if (!MatchesSolo(tenant, solo)) rung_solo = false;
      retries += tenant.sla.retries;
      deadline_drops += tenant.sla.deadline_drops;
      degraded += tenant.sla.rounds_degraded;
      p95_max = std::max(p95_max, tenant.sla.round_latency_p95_s);
      makespan = std::max(makespan, tenant.sla.makespan_s);
    }
    widths_identical = widths_identical && rung_widths;
    solo_identical = solo_identical && rung_solo;
    std::printf("%6zu %5zu %6zu | %8llu %8llu %8zu %8.1f | %8.1fs %6s %5s\n",
                tasks, reference.peak_active, reference.admission_passes,
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(deadline_drops), degraded,
                p95_max, makespan, rung_widths ? "yes" : "NO",
                rung_solo ? "yes" : "NO");

    if (tasks == 10) {
      std::printf("\n  per-task SLA rows (10-task rung):\n");
      std::printf("  %6s %5s | %8s %8s %8s | %8s %8s %6s\n", "task", "prio",
                  "p50", "p95", "p99", "wait", "mkspan", "retry");
      for (const core::TenantResult& tenant : reference.results) {
        std::printf("  %6llu %5llu | %7.1fs %7.1fs %7.1fs | %7.1fs %7.1fs "
                    "%6llu\n",
                    static_cast<unsigned long long>(tenant.id.value()),
                    static_cast<unsigned long long>(tenant.id.value() % 7),
                    tenant.sla.round_latency_p50_s,
                    tenant.sla.round_latency_p95_s,
                    tenant.sla.round_latency_p99_s, tenant.sla.queue_wait_s,
                    tenant.sla.makespan_s,
                    static_cast<unsigned long long>(tenant.sla.retries));
      }
      std::printf("\n");
    }
  }

  bench::PrintRule();
  std::printf("Shard-width bit-identity (1/2/4/8) at every rung: %s\n",
              widths_identical ? "yes" : "NO");
  std::printf("Contention-free rungs match solo-in-sequence:     %s\n",
              solo_identical ? "yes" : "NO");
  bench::EmitOpTimings();
  const bool reproduced = widths_identical && solo_identical;
  std::printf("Multi-tenant ladder: %s\n",
              reproduced ? "REPRODUCED" : "NOT reproduced");
  return reproduced ? 0 : 1;
}
