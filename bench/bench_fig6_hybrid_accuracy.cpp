// Reproduces Fig. 6: "Accuracy difference relative to scale in two grades
// of devices."
//
// §VI-B2: logical simulation trains with PyMNN-style operators, device
// simulation with C++ MNN-style operators; five allocation ratios
// (Logical, Device) — Type 1 (100%,0%) … Type 5 (0%,100%) — are run at
// scales (4,4), (20,20), (100,100), (500,500) devices per grade for 10
// rounds of FedAvg (lr 1e-3, 10 local epochs in the paper; compressed here
// for runtime). The ACC difference of each hybrid setting vs the local
// distributed benchmark must stay below 0.5%.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"

int main() {
  using namespace simdc;
  bench::PrintHeader(
      "Fig. 6 — ACC difference of hybrid allocations vs local-distributed "
      "benchmark");

  ThreadPool pool(0);
  const std::size_t scales[] = {4, 20, 100, 500};
  const double kTypes[] = {1.0, 0.75, 0.5, 0.25, 0.0};

  std::printf("%-12s", "Scale");
  for (int t = 1; t <= 5; ++t) std::printf("   Type %d (%%)", t);
  std::printf("\n");
  bench::PrintRule();

  double worst = 0.0;
  for (const std::size_t scale : scales) {
    // Two grades of `scale` devices each (the paper's (s, s) scales).
    data::SynthConfig data_config;
    data_config.num_devices = 2 * scale;
    data_config.records_per_device_mean = 15;
    // A large fixed test pool so one flipped prediction costs ~0.03%, well
    // below the 0.5% criterion being tested.
    data_config.num_test_devices = 200;
    data_config.hash_dim = 1u << 14;
    data_config.seed = 1234;
    const auto dataset = data::GenerateSyntheticAvazu(data_config);

    auto accuracy_for = [&](double logical_fraction) {
      const auto start = std::chrono::steady_clock::now();
      sim::EventLoop loop;
      core::FlExperimentConfig config;
      config.rounds = 10;
      // Paper hyper-parameters are lr=1e-3 / 10 epochs on 2M Avazu rows;
      // on the smaller synthetic shards the equivalent optimization
      // progress needs a proportionally larger step (see EXPERIMENTS.md).
      config.train.learning_rate = 0.02;
      config.train.epochs = 5;
      config.logical_fraction = logical_fraction;
      config.trigger = cloud::AggregationTrigger::kScheduled;
      config.schedule_period = Seconds(60.0);
      config.seed = 77;
      core::FlEngine engine(loop, dataset, config, &pool);
      const auto result = engine.Run();
      const auto elapsed = std::chrono::steady_clock::now() - start;
      bench::OpTimings::Instance().Record(
          "fl_run_scale_" + std::to_string(scale),
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
      return result.rounds.back().test_accuracy;
    };

    // Benchmark: the local distributed computing environment = everything
    // on the server kernel.
    const double benchmark = accuracy_for(1.0);
    std::printf("(%3zu,%3zu)  ", scale, scale);
    for (const double type : kTypes) {
      const double acc = accuracy_for(type);
      const double diff_pct = (acc - benchmark) * 100.0;
      worst = std::max(worst, std::abs(diff_pct));
      std::printf("  %+9.3f", diff_pct);
    }
    std::printf("\n");
  }
  bench::PrintRule();
  std::printf(
      "Largest |ACC difference| = %.3f%% — paper requires < 0.5%% across all\n"
      "scales and allocation ratios: %s\n",
      worst, worst < 0.5 ? "REPRODUCED" : "NOT reproduced");
  bench::EmitOpTimings();
  return worst < 0.5 ? 0 : 1;
}
