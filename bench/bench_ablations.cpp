// Ablation benches for the design decisions DESIGN.md calls out:
//
//   D1 — hybrid allocation solved by binary search over candidate
//        makespans vs exhaustive enumeration: identical objective values,
//        orders-of-magnitude speed difference at scale.
//   D2 — AUC discretization with capacity-aware subdivision vs a naive
//        fixed coarse slicing: fidelity (Pearson vs the user curve) and
//        worst-case per-point burst.
//   D4 is covered inside bench_fig8_scalability (actor multiplexing).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "flow/rate_functions.h"
#include "flow/strategy.h"
#include "sched/allocation.h"

namespace {

using namespace simdc;

double WallMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations — DESIGN.md decisions D1 and D2");

  // ---- D1: allocation solver ----
  std::printf("\nD1. Hybrid allocation: binary search vs brute force\n");
  std::printf("%12s %14s %16s %12s %12s\n", "devices", "T (search)",
              "T (brute force)", "ms (search)", "ms (brute)");
  bench::PrintRule();
  for (const std::size_t n : {10u, 20u, 40u, 80u}) {
    sched::GradeAllocationInput high;
    high.total_devices = n;
    high.benchmarking = 1;
    high.logical_bundles = 64;
    high.bundles_per_device = 8;
    high.phones = 4;
    high.alpha_s = 2.4;
    high.beta_s = 1.6;
    high.lambda_s = 15.0;
    auto low = high;
    low.bundles_per_device = 4;
    low.alpha_s = 5.2;
    low.beta_s = 3.8;
    low.lambda_s = 21.0;
    const std::vector<sched::GradeAllocationInput> grades = {high, low};

    double t_fast = 0.0, t_slow = 0.0;
    const double ms_fast = WallMs([&] {
      auto result = sched::SolveHybridAllocation(grades);
      t_fast = result.ok() ? result->total_seconds : -1.0;
    });
    const double ms_slow = WallMs([&] {
      auto result = sched::BruteForceAllocation(grades);
      t_slow = result.ok() ? result->total_seconds : -1.0;
    });
    std::printf("%12zu %14.2f %16.2f %12.3f %12.3f\n", n, t_fast, t_slow,
                ms_fast, ms_slow);
    if (std::abs(t_fast - t_slow) > 1e-6) {
      std::fprintf(stderr, "MISMATCH at n=%zu\n", n);
      return 1;
    }
  }
  std::printf("(brute force is O(N^2) in total devices; the search stays "
              "sub-millisecond\n at 10,000+ devices — see sched_test's "
              "LargeScaleRunsFast.)\n");

  // ---- D2: discretization fidelity ----
  std::printf("\nD2. AUC discretization: adaptive vs fixed 10-slot slicing\n");
  std::printf("%-12s %18s %18s %20s\n", "curve", "r (adaptive)", "r (10 slots)",
              "peak burst (10 slots)");
  bench::PrintRule();
  const std::size_t total = 20000;
  for (const auto& curve :
       {flow::NormalCurve(0.5), flow::SinPlusOne(), flow::TenPowT()}) {
    auto correlate = [&](const std::vector<flow::SlotPlan>& plan) {
      std::vector<double> counts, values;
      for (std::size_t i = 0; i < plan.size(); ++i) {
        counts.push_back(static_cast<double>(plan[i].count));
        const double t = curve.domain_lo +
                         curve.domain_width() * (static_cast<double>(i) + 0.5) /
                             static_cast<double>(plan.size());
        values.push_back(curve(t));
      }
      return PearsonCorrelation(counts, values);
    };
    const auto adaptive =
        flow::DiscretizeRate(curve, Minutes(1.0), total, 700.0);
    const auto coarse = flow::DiscretizeRate(curve, Minutes(1.0), total, 700.0,
                                             /*min_slots=*/10,
                                             /*max_slots=*/10);
    std::size_t coarse_peak = 0;
    for (const auto& slot : coarse) coarse_peak = std::max(coarse_peak, slot.count);
    std::printf("%-12s %18.4f %18.4f %17zu msg\n", curve.name.c_str(),
                correlate(adaptive), correlate(coarse), coarse_peak);
  }
  std::printf(
      "(the fixed slicing keeps curve *correlation* but violates the "
      "per-point\n capacity limit — its peak slot far exceeds 700 messages, "
      "so the cloud\n would see a multi-second burst smear instead of the "
      "user's curve.)\n");
  return 0;
}
