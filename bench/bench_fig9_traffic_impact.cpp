// Reproduces Fig. 9: "Impact of device behavior traffic curves on
// aggregations."
//
// §VI-C1: a non-IID scenario where clients with higher CTR transmit
// results faster; response delays follow right-tailed normal curves
// N(0, σ) with σ ∈ {1, 2, 3} (minutes).
//   (a) sample-threshold aggregation inside a fixed 20-minute window —
//       smaller σ completes more aggregation rounds → lower loss;
//   (b) scheduled aggregation — smaller σ aggregates more samples per
//       round → higher train accuracy per round.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"

namespace {

using namespace simdc;

/// Quantile of |N(0,1)| via bisection on erf.
double HalfNormalQuantile(double u) {
  u = std::clamp(u, 1e-9, 1.0 - 1e-9);
  double lo = 0.0, hi = 6.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = (lo + hi) / 2.0;
    (std::erf(mid / std::sqrt(2.0)) < u ? lo : hi) = mid;
  }
  return (lo + hi) / 2.0;
}

/// CTR-rank-based delay assignment: higher CTR → smaller half-normal
/// quantile → faster response (the paper's non-IID construction).
struct DelayModel {
  std::vector<double> sorted_ctrs;
  double sigma_minutes;

  explicit DelayModel(const data::FederatedDataset& dataset, double sigma)
      : sigma_minutes(sigma) {
    for (const auto& device : dataset.devices) {
      sorted_ctrs.push_back(device.true_ctr);
    }
    std::sort(sorted_ctrs.begin(), sorted_ctrs.end());
  }

  SimDuration operator()(const data::DeviceData& device, Rng& rng) const {
    const auto rank = static_cast<double>(
        std::lower_bound(sorted_ctrs.begin(), sorted_ctrs.end(),
                         device.true_ctr) -
        sorted_ctrs.begin());
    // High CTR → high rank → low delay quantile; devices re-draw their
    // response each round (network conditions vary), so the quantile
    // jitters around the CTR-determined mean.
    const double u = std::clamp(
        1.0 - (rank + 0.5) / static_cast<double>(sorted_ctrs.size()) +
            rng.Uniform(-0.3, 0.3),
        0.0, 1.0);
    return Minutes(sigma_minutes * HalfNormalQuantile(u));
  }
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 9 — impact of device behavior traffic curves on aggregation");

  ThreadPool pool(0);
  // §VI-C1's non-IID construction: heterogeneous per-device CTR with
  // higher-CTR devices responding faster (delays from right-tailed
  // N(0,σ) assigned by CTR rank).
  data::SynthConfig data_config;
  data_config.num_devices = 300;
  data_config.records_per_device_mean = 15;
  data_config.hash_dim = 1u << 13;
  data_config.distribution = data::LabelDistribution::kNatural;
  data_config.seed = 31;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  // For the scheduled-aggregation accuracy study (b), a sharper non-IID
  // split (moderately polarized devices) makes the σ-dependent
  // aggregation bias visible in per-round train accuracy.
  data::SynthConfig skew_config = data_config;
  skew_config.distribution = data::LabelDistribution::kPolarized;
  skew_config.polarized_positive_fraction = 0.5;
  skew_config.positive_heavy_ctr = 0.8;
  skew_config.negative_heavy_ctr = 0.2;
  const auto skewed_dataset = data::GenerateSyntheticAvazu(skew_config);

  // ---- (a) sample-threshold aggregation in a fixed 20-minute window ----
  std::printf("\n(a) Sample-threshold aggregation, 20-minute window\n");
  std::printf("%8s %18s %18s %18s\n", "", "sigma=1", "sigma=2", "sigma=3");
  std::printf("%8s %9s %8s %9s %8s %9s %8s\n", "", "t (min)", "loss",
              "t (min)", "loss", "t (min)", "loss");
  bench::PrintRule();

  std::vector<core::FlRunResult> threshold_results;
  for (const double sigma : {1.0, 2.0, 3.0}) {
    sim::EventLoop loop;
    core::FlExperimentConfig config;
    config.rounds = 1000;  // bounded by the window
    config.time_window = Minutes(20.0);
    config.train.learning_rate = 0.02;
    config.train.epochs = 1;
    config.trigger = cloud::AggregationTrigger::kSampleThreshold;
    config.sample_threshold = static_cast<std::size_t>(
        0.5 * static_cast<double>(dataset.TotalExamples()));
    config.reject_stale = true;  // round timing follows the traffic curve
    config.compute_seconds = 5.0;
    const DelayModel delays(dataset, sigma);
    config.delay_fn = [&delays](const data::DeviceData& device, std::size_t,
                                Rng& rng) { return delays(device, rng); };
    config.seed = 13;
    core::FlEngine engine(loop, dataset, config, &pool);
    threshold_results.push_back(engine.Run());
  }
  std::size_t max_rounds = 0;
  for (const auto& r : threshold_results) {
    max_rounds = std::max(max_rounds, r.rounds.size());
  }
  max_rounds = std::min<std::size_t>(max_rounds, 40);  // keep output compact
  for (std::size_t i = 0; i < max_rounds; ++i) {
    std::printf("round %2zu", i + 1);
    for (const auto& result : threshold_results) {
      if (i < result.rounds.size()) {
        std::printf(" %9.1f %8.3f", ToMinutes(result.rounds[i].time),
                    result.rounds[i].test_logloss);
      } else {
        std::printf(" %9s %8s", "-", "-");
      }
    }
    std::printf("\n");
  }
  bench::PrintRule();
  const bool more_rounds =
      threshold_results[0].rounds.size() >= threshold_results[1].rounds.size() &&
      threshold_results[1].rounds.size() >= threshold_results[2].rounds.size();
  const bool lower_loss =
      threshold_results[0].rounds.back().test_logloss <=
      threshold_results[2].rounds.back().test_logloss + 1e-6;
  std::printf(
      "sigma=1 completes %zu rounds vs %zu (sigma=3); final loss %.3f vs "
      "%.3f\n",
      threshold_results[0].rounds.size(),
      threshold_results[2].rounds.size(),
      threshold_results[0].rounds.back().test_logloss,
      threshold_results[2].rounds.back().test_logloss);

  // ---- (b) scheduled aggregation: train accuracy per round ----
  std::printf("\n(b) Scheduled aggregation, train accuracy per round\n");
  std::printf("%8s %10s %10s %10s\n", "Round", "sigma=1", "sigma=2",
              "sigma=3");
  bench::PrintRule();
  std::vector<core::FlRunResult> scheduled_results;
  for (const double sigma : {1.0, 2.0, 3.0}) {
    sim::EventLoop loop;
    core::FlExperimentConfig config;
    config.rounds = 10;
    config.train.learning_rate = 0.15;
    config.train.epochs = 5;
    config.trigger = cloud::AggregationTrigger::kScheduled;
    config.schedule_period = Minutes(2.0);
    config.reject_stale = true;  // only the round's own arrivals count
    config.compute_seconds = 5.0;
    const DelayModel delays(skewed_dataset, sigma);
    config.delay_fn = [&delays](const data::DeviceData& device, std::size_t,
                                Rng& rng) { return delays(device, rng); };
    config.seed = 13;
    core::FlEngine engine(loop, skewed_dataset, config, &pool);
    scheduled_results.push_back(engine.Run());
  }
  for (std::size_t i = 0; i < 10; ++i) {
    std::printf("%8zu", i + 1);
    for (const auto& result : scheduled_results) {
      if (i < result.rounds.size()) {
        std::printf(" %10.3f", result.rounds[i].train_accuracy);
      } else {
        std::printf(" %10s", "-");
      }
    }
    std::printf("\n");
  }
  bench::PrintRule();
  double mean1 = 0.0, mean3 = 0.0;
  for (std::size_t i = 5; i < scheduled_results[0].rounds.size(); ++i) {
    mean1 += scheduled_results[0].rounds[i].train_accuracy;
  }
  for (std::size_t i = 5; i < scheduled_results[2].rounds.size(); ++i) {
    mean3 += scheduled_results[2].rounds[i].train_accuracy;
  }
  const bool acc_higher = mean1 >= mean3;
  std::printf(
      "Shape checks vs paper: sigma=1 completes >= rounds of larger sigma\n"
      "(%s), reaches <= loss (%s), and higher late-round train accuracy "
      "(%s)\n",
      more_rounds ? "yes" : "NO", lower_loss ? "yes" : "NO",
      acc_higher ? "yes" : "NO");
  return more_rounds && lower_loss && acc_higher ? 0 : 1;
}
