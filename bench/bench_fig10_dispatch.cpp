// Reproduces Fig. 10: "Rule-based dispatch strategies."
//
//   (a)/(b) specific time-point dispatching: user-defined transmission
//   amounts at distinct time points; the cloud receives the messages
//   spread over "the designated time point and subsequent certain
//   intervals" because of the ~700 msg/s capacity limit.
//   (c)/(d) specific time-interval dispatching: a right-tailed-normal-like
//   N(0,1) curve scaled to a 1-minute interval and 10,000 messages; the
//   discretized per-second send volumes track the curve and the cloud's
//   cumulative count follows its integral.
//
// Plus the 100k-message fan-in scenario: the same dispatch schedules at
// 100,000 messages, run through both delivery paths (one closure per
// message vs one MessageBatch event per dispatch tick). Emits OPTIME ops
// that bench/compare.py gates, and self-checks that the batched path is
// >= 5x faster with bit-identical arrivals.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "flow/device_flow.h"
#include "flow/rate_functions.h"
#include "sim/event_loop.h"

namespace {

using namespace simdc;

class CountingEndpoint final : public flow::CloudEndpoint {
 public:
  void Deliver(const flow::Message&, SimTime arrival) override {
    arrivals.push_back(arrival);
  }
  void DeliverBatch(std::span<const flow::Message> messages,
                    std::span<const SimTime> batch_arrivals) override {
    // Consume a whole dispatch tick in one call (what cloud::Aggregation
    // does on the batched path).
    (void)messages;
    arrivals.insert(arrivals.end(), batch_arrivals.begin(),
                    batch_arrivals.end());
  }
  std::vector<SimTime> arrivals;

  std::vector<std::size_t> PerSecond(std::size_t seconds) const {
    std::vector<std::size_t> counts(seconds, 0);
    for (const SimTime at : arrivals) {
      const auto s = static_cast<std::size_t>(ToSeconds(at));
      if (s < seconds) ++counts[s];
    }
    return counts;
  }
};

void FillShelf(flow::DeviceFlow& flow, TaskId task, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    flow::Message m;
    m.id = MessageId(i + 1);
    m.task = task;
    m.device = DeviceId(i);
    if (!flow.OnMessage(std::move(m)).ok()) std::abort();
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 10 — rule-based dispatch strategies");

  // ---- (a)/(b): specific time-point dispatching ----
  {
    sim::EventLoop loop;
    flow::DeviceFlow device_flow(loop);
    CountingEndpoint cloud;
    flow::TimePointDispatch strategy;
    strategy.points = {{Seconds(5), true, 600, 0.0, 0},
                       {Seconds(20), true, 1400, 0.0, 0},
                       {Seconds(40), true, 1000, 0.0, 0}};
    if (!device_flow.ConfigureTask(TaskId(1), strategy, &cloud).ok()) return 1;
    FillShelf(device_flow, TaskId(1), 3000);
    if (!device_flow.OnRoundEnd(TaskId(1), 0).ok()) return 1;
    loop.Run();

    std::printf("\n(a) DeviceFlow dispatch amounts at time points\n");
    const auto& batches =
        device_flow.FindDispatcher(TaskId(1))->stats().batches;
    for (const auto& [when, amount] : batches) {
      std::printf("  t=%4.0f s: dispatched %zu messages\n", ToSeconds(when),
                  amount);
    }
    std::printf("\n(b) Cloud-side cumulative received messages\n");
    const auto per_second = cloud.PerSecond(60);
    std::size_t cumulative = 0;
    for (std::size_t s = 0; s < per_second.size(); ++s) {
      cumulative += per_second[s];
      if (per_second[s] > 0) {
        std::printf("  t=%4zu s: +%4zu (cumulative %5zu)\n", s,
                    per_second[s], cumulative);
      }
    }
    // The 1400-message batch takes 2 s at 700 msg/s: verify the spread.
    const bool spread = per_second[20] <= 701 && per_second[21] > 0;
    std::printf("  capacity limit spreads the 1400-message point over >1 s: "
                "%s\n",
                spread ? "yes" : "NO");
    if (!spread || cumulative != 3000) return 1;
  }

  // ---- (c)/(d): specific time-interval dispatching ----
  {
    sim::EventLoop loop;
    flow::DeviceFlow device_flow(loop);
    CountingEndpoint cloud;
    flow::TimeIntervalDispatch strategy;
    strategy.rate = flow::NormalCurve(1.0);  // σ=1 curve, domain [-4, 4]
    strategy.interval = Minutes(1.0);        // scaled to 1 minute
    if (!device_flow.ConfigureTask(TaskId(2), strategy, &cloud).ok()) return 1;
    FillShelf(device_flow, TaskId(2), 10000);  // volume 10000 (paper's setup)
    if (!device_flow.OnRoundEnd(TaskId(2), 0).ok()) return 1;
    loop.Run();

    std::printf("\n(c) Discretized per-second send volumes vs traffic "
                "function\n");
    const auto per_second = cloud.PerSecond(61);
    const auto curve = strategy.rate;
    std::vector<double> actual, expected;
    for (std::size_t s = 0; s < 60; ++s) {
      actual.push_back(static_cast<double>(per_second[s]));
      const double t =
          curve.domain_lo +
          curve.domain_width() * (static_cast<double>(s) + 0.5) / 60.0;
      expected.push_back(curve(t));
    }
    std::printf("  sends  %s\n", bench::Sparkline(actual).c_str());
    std::printf("  f(t)   %s\n", bench::Sparkline(expected).c_str());
    const double r = PearsonCorrelation(actual, expected);
    std::printf("  Pearson(actual sends, traffic function) = %.4f\n", r);

    std::printf("\n(d) Cloud-side cumulative received messages\n");
    std::size_t cumulative = 0;
    for (std::size_t s = 0; s < per_second.size(); s += 5) {
      std::size_t upto = 0;
      for (std::size_t k = 0; k <= s && k < per_second.size(); ++k) {
        upto += per_second[k];
      }
      cumulative = upto;
      std::printf("  t=%4zu s: cumulative %5zu\n", s, cumulative);
    }
    std::printf(
        "\nShape checks vs paper: dispatch tracks the user curve (r > 0.97: "
        "%s)\nand all 10000 messages arrive within the interval.\n",
        r > 0.97 ? "yes" : "NO");
    if (r <= 0.97) return 1;
  }

  // ---- 100k-message fan-in: per-message closures vs batched ticks ----
  {
    constexpr std::size_t kMessages = 100000;
    constexpr int kReps = 7;

    // One timed run: fill the shelf, fire the round end, drain the loop.
    const auto run_once = [&](const flow::DispatchStrategy& strategy,
                              flow::DeliveryMode mode,
                              std::vector<SimTime>& arrivals_out) {
      sim::EventLoop loop;
      flow::DeviceFlow device_flow(loop);
      CountingEndpoint cloud;
      cloud.arrivals.reserve(kMessages);
      if (!device_flow.ConfigureTask(TaskId(9), strategy, &cloud, 0, mode)
               .ok()) {
        std::abort();
      }
      FillShelf(device_flow, TaskId(9), kMessages);
      const auto start = std::chrono::steady_clock::now();
      if (!device_flow.OnRoundEnd(TaskId(9), 0).ok()) std::abort();
      loop.Run();
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (cloud.arrivals.size() != kMessages) std::abort();
      arrivals_out = std::move(cloud.arrivals);
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
    };

    // Dispatch + delivery cost for one strategy in one mode: best of
    // kReps. Only the min is recorded under the OPTIME op — it is far
    // more stable under machine load than a mean, which keeps the
    // compare.py regression gate on this op from tripping on noise.
    const auto measure = [&](const char* op,
                             const flow::DispatchStrategy& strategy,
                             flow::DeliveryMode mode,
                             std::vector<SimTime>& arrivals_out) {
      std::uint64_t best = ~std::uint64_t{0};
      for (int rep = 0; rep < kReps; ++rep) {
        best = std::min(best, run_once(strategy, mode, arrivals_out));
      }
      bench::OpTimings::Instance().Record(op, best);
      return best;
    };

    flow::TimePointDispatch points;
    points.points = {{Seconds(1), true, kMessages, 0.0, 0}};
    flow::TimeIntervalDispatch interval;
    interval.rate = flow::NormalCurve(1.0);
    interval.interval = Minutes(3.0);

    std::printf("\n(e) 100k-message fan-in: dispatch+delivery wall time\n");
    bool all_fast = true;
    const struct {
      const char* name;
      const flow::DispatchStrategy strategy;
    } scenarios[] = {{"timepoint", points}, {"interval", interval}};
    for (const auto& scenario : scenarios) {
      std::vector<SimTime> batched_arrivals, per_message_arrivals;
      const std::string prefix =
          std::string("fig10_") + scenario.name + "_100k_";
      const std::uint64_t batched =
          measure((prefix + "batched").c_str(), scenario.strategy,
                  flow::DeliveryMode::kBatched, batched_arrivals);
      const std::uint64_t per_message =
          measure((prefix + "per_message").c_str(), scenario.strategy,
                  flow::DeliveryMode::kPerMessage, per_message_arrivals);
      if (batched_arrivals != per_message_arrivals) {
        std::printf("  %s: ARRIVAL MISMATCH between modes\n", scenario.name);
        return 1;
      }
      const double speedup = static_cast<double>(per_message) /
                             static_cast<double>(std::max<std::uint64_t>(1, batched));
      std::printf(
          "  %-9s per-message %8.2f ms | batched %8.2f ms | %5.1fx "
          "(arrivals bit-identical)\n",
          scenario.name, static_cast<double>(per_message) / 1e6,
          static_cast<double>(batched) / 1e6, speedup);
      if (speedup < 5.0) all_fast = false;
    }
    std::printf("  batched path >= 5x faster on both schedules: %s\n",
                all_fast ? "yes" : "NO");
    if (!all_fast) return 1;
  }

  bench::EmitOpTimings();
  return 0;
}
