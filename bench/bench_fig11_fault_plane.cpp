// Fault-plane ablation ladder (the robustness companion to Fig. 11).
//
// Sweeps churn rate × retry policy × diurnal phase over the behavior-model
// fleet and, at EVERY ladder point, hard-gates the bit-identity of the run
// across shard widths 1/2/4/8 — FlRunResult, merged DispatchStats (retries,
// deadline drops, churn losses included) and the cloud admission counters.
// A single diverging bit fails the bench: the fault plane's determinism
// contract is a gate here, not a test-suite nicety.
//
// On top of the gate it prints the degradation curves the paper's dropout
// study implies: delivered-update fraction, retry recovery rate and final
// accuracy as churn grows, with retries off vs on.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"

namespace {

using namespace simdc;

struct Outcome {
  core::FlRunResult result;
  flow::DispatchStats stats;
  std::size_t messages_received = 0;
};

struct LadderPoint {
  double churn = 0.0;
  std::size_t max_attempts = 1;
  double phase = 0.0;
};

core::FlExperimentConfig PointConfig(const LadderPoint& point) {
  core::FlExperimentConfig config;
  config.rounds = 3;
  config.train.learning_rate = 0.05;
  config.train.epochs = 1;
  config.logical_fraction = 0.5;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(30.0);
  config.seed = 7;
  // Width-invariant flow regime: pass-through ticks, disengaged limiter.
  config.strategy = flow::RealtimeAccumulated{
      {1}, 0.0, flow::kShardWidthInvariantCapacity};
  config.behavior.enabled = true;
  config.behavior.seed = 19;
  config.behavior.mean_availability = 0.85;
  config.behavior.diurnal_amplitude = 0.1;
  config.behavior.diurnal_period = Seconds(120.0);
  config.behavior.diurnal_phase = point.phase;
  config.behavior.churn_rate = point.churn;
  config.behavior.churn_horizon = Seconds(60.0);
  config.behavior.rejoin_fraction = 0.5;
  config.behavior.churn_downtime = Seconds(20.0);
  config.behavior.link_base_failure = 0.15;
  config.behavior.link_diurnal_swing = 0.2;
  config.link.max_attempts = point.max_attempts;
  config.link.backoff_initial = Seconds(2.0);
  config.link.backoff_multiplier = 2.0;
  config.link.upload_deadline = Seconds(25.0);
  return config;
}

Outcome RunPoint(const data::FederatedDataset& dataset,
                 core::FlExperimentConfig config, std::size_t shards) {
  sim::EventLoop loop;
  config.shards = shards;
  core::FlEngine engine(loop, dataset, std::move(config));
  Outcome out;
  out.result = engine.Run();
  out.stats = engine.dispatch_stats();
  out.messages_received = engine.aggregation().messages_received();
  return out;
}

bool Identical(const Outcome& a, const Outcome& b) {
  if (a.result.rounds.size() != b.result.rounds.size()) return false;
  for (std::size_t i = 0; i < a.result.rounds.size(); ++i) {
    const auto& ra = a.result.rounds[i];
    const auto& rb = b.result.rounds[i];
    if (ra.time != rb.time || ra.clients != rb.clients ||
        ra.samples != rb.samples || ra.test_accuracy != rb.test_accuracy ||
        ra.test_logloss != rb.test_logloss ||
        ra.train_accuracy != rb.train_accuracy ||
        ra.train_logloss != rb.train_logloss) {
      return false;
    }
  }
  if (a.result.messages_emitted != b.result.messages_emitted ||
      a.result.messages_dropped != b.result.messages_dropped ||
      a.result.skipped_unavailable != b.result.skipped_unavailable ||
      a.result.rounds_degraded != b.result.rounds_degraded ||
      a.result.rounds_aborted != b.result.rounds_aborted ||
      a.result.final_bias != b.result.final_bias ||
      a.result.final_weights.size() != b.result.final_weights.size() ||
      std::memcmp(a.result.final_weights.data(), b.result.final_weights.data(),
                  a.result.final_weights.size() * sizeof(float)) != 0) {
    return false;
  }
  const auto& sa = a.stats;
  const auto& sb = b.stats;
  return sa.received == sb.received && sa.sent == sb.sent &&
         sa.dropped == sb.dropped && sa.retries == sb.retries &&
         sa.retry_successes == sb.retry_successes &&
         sa.deadline_drops == sb.deadline_drops &&
         sa.churn_losses == sb.churn_losses && sa.batches == sb.batches &&
         sa.batch_keys == sb.batch_keys &&
         a.messages_received == b.messages_received;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fault-plane ablation ladder — churn x retry policy x diurnal phase\n"
      "(96 devices; every point gated bit-identical at shard widths "
      "1/2/4/8)");

  data::SynthConfig data_config;
  data_config.num_devices = 96;
  data_config.records_per_device_mean = 10;
  data_config.num_test_devices = 8;
  data_config.hash_dim = 1u << 10;
  data_config.seed = 33;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  const double churns[] = {0.0, 0.15, 0.30};
  const std::size_t attempts[] = {1, 3};
  const double phases[] = {0.0, 0.5};
  const std::size_t widths[] = {1, 2, 4, 8};

  std::printf("\n%7s %8s %6s | %8s %8s %8s %8s %8s | %9s %6s\n", "churn",
              "attempts", "phase", "emitted", "deliv", "retries", "deadl",
              "churnls", "acc", "ident");
  bench::PrintRule();

  bool all_identical = true;
  std::vector<Outcome> curve[2];  // [retries off, retries on], phase 0
  for (const double churn : churns) {
    for (const std::size_t max_attempts : attempts) {
      for (const double phase : phases) {
        const LadderPoint point{churn, max_attempts, phase};
        Outcome reference;
        bool point_identical = true;
        for (const std::size_t width : widths) {
          bench::ScopedOpTimer timer("fault_ladder_w" +
                                     std::to_string(width));
          Outcome outcome = RunPoint(dataset, PointConfig(point), width);
          if (width == 1) {
            reference = std::move(outcome);
          } else if (!Identical(reference, outcome)) {
            point_identical = false;
          }
        }
        all_identical = all_identical && point_identical;
        if (phase == 0.0) {
          curve[max_attempts > 1 ? 1 : 0].push_back(reference);
        }
        const auto& r = reference;
        std::printf(
            "%7.2f %8zu %6.2f | %8zu %8zu %8zu %8zu %8zu | %9.4f %6s\n",
            churn, max_attempts, phase, r.result.messages_emitted,
            r.stats.sent, r.stats.retries, r.stats.deadline_drops,
            r.stats.churn_losses, r.result.rounds.back().test_accuracy,
            point_identical ? "yes" : "NO");
      }
    }
  }

  bench::PrintRule();
  std::printf("\nDegradation vs churn (phase 0): delivered fraction and "
              "final accuracy\n");
  std::printf("%7s | %14s %14s | %10s %10s\n", "churn", "deliv(retry=1)",
              "deliv(retry=3)", "acc(r=1)", "acc(r=3)");
  bench::PrintRule();
  bool retries_help = true;
  for (std::size_t i = 0; i < curve[0].size(); ++i) {
    const auto frac = [](const Outcome& o) {
      return o.result.messages_emitted == 0
                 ? 0.0
                 : static_cast<double>(o.stats.sent) /
                       static_cast<double>(o.result.messages_emitted);
    };
    std::printf("%7.2f | %14.4f %14.4f | %10.4f %10.4f\n", churns[i],
                frac(curve[0][i]), frac(curve[1][i]),
                curve[0][i].result.rounds.back().test_accuracy,
                curve[1][i].result.rounds.back().test_accuracy);
    if (frac(curve[1][i]) < frac(curve[0][i])) retries_help = false;
  }

  bench::PrintRule();
  std::printf("Width bit-identity at every ladder point: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("Retries never lower the delivered fraction: %s\n",
              retries_help ? "yes" : "NO");
  bench::EmitOpTimings();
  const bool reproduced = all_identical && retries_help;
  std::printf("Fault-plane ladder: %s\n",
              reproduced ? "REPRODUCED" : "NOT reproduced");
  return reproduced ? 0 : 1;
}
