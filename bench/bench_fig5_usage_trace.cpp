// Reproduces Fig. 5: "Measurement of CPU and memory usage during the first
// three rounds."
//
// One benchmarking device runs three training rounds; PhoneMgr samples it
// through ADB at 1 Hz. Performance measurement starts with the APK launch
// and the gaps while the device waits for global aggregation correspond to
// the dashed segments in the paper's figure (we print them as "(waiting)").
#include <cstdio>

#include "bench_util.h"
#include "cloud/database.h"
#include "device/fleet.h"
#include "phonemgr/phone_mgr.h"
#include "sim/event_loop.h"

int main() {
  using namespace simdc;
  bench::PrintHeader(
      "Fig. 5 — CPU and memory usage of one benchmarking device, first "
      "three rounds");

  sim::EventLoop loop;
  device::PhoneMgr mgr(loop);
  mgr.RegisterFleet(device::MakeLocalFleet(1, 0, 7, 0));
  cloud::MetricsDatabase db;
  mgr.set_metrics_sink(&db);

  device::PhoneJob job;
  job.task = TaskId(1);
  job.grade = device::DeviceGrade::kHigh;
  job.benchmarking_phones = 1;
  job.rounds = 3;
  job.startup_s = 10.0;
  job.round_duration_s = 30.0;       // ~30 s of training per round
  job.aggregation_wait_s = 12.0;     // wait for global aggregation
  job.sample_period = Seconds(1.0);
  auto handle = mgr.SubmitJob(job);
  if (!handle.ok()) {
    std::fprintf(stderr, "%s\n", handle.error().ToString().c_str());
    return 1;
  }
  loop.Run();

  const auto samples = db.QueryPhone(TaskId(1), handle->benchmarking[0]);
  std::printf("%8s %10s %12s  %s\n", "t (s)", "CPU (%)", "Mem (MB)", "stage");
  bench::PrintRule();
  std::vector<double> cpu_series, mem_series;
  for (const auto& sample : samples) {
    const bool active = sample.stage == device::ApkStage::kTraining ||
                        sample.stage == device::ApkStage::kApkLaunch;
    if (sample.stage == device::ApkStage::kNoApk) continue;
    if (active) {
      std::printf("%8.0f %10.1f %12.1f  %s\n", ToSeconds(sample.time),
                  sample.cpu_percent,
                  static_cast<double>(sample.memory_kb) / 1024.0,
                  ToString(sample.stage));
      cpu_series.push_back(sample.cpu_percent);
      mem_series.push_back(static_cast<double>(sample.memory_kb) / 1024.0);
    } else if (sample.stage == device::ApkStage::kPostTraining) {
      // Fig. 5's dashed gray segments: no data recorded while waiting.
      std::printf("%8.0f %10s %12s  (waiting for aggregation)\n",
                  ToSeconds(sample.time), "-", "-");
    }
  }
  bench::PrintRule();
  std::printf("CPU    %s\n", bench::Sparkline(cpu_series).c_str());
  std::printf("Memory %s\n", bench::Sparkline(mem_series).c_str());
  std::printf(
      "Shape checks vs paper: CPU oscillates within ~2-14%% during training;\n"
      "memory climbs from ~25 MB to ~45 MB within each round; no data in\n"
      "the aggregation-wait gaps.\n");
  return 0;
}
