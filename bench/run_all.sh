#!/usr/bin/env bash
# Build-and-run helper for the SimDC benches.
#
# Usage:
#   bench/run_all.sh [BENCH_BIN_DIR]
#
# Runs every bench_* binary found in BENCH_BIN_DIR (default: build/bench,
# configuring + building the Release tree first if it is missing) and writes
# one BENCH_<name>.json artifact per bench to the repo root:
#
#   { "bench": "...", "wall_ms": ..., "exit_code": ..., "commit": "...",
#     "cpu_model": "...", "ops": {"<op>": {"calls": ..., "total_ns": ...,
#     "ns_per_call": ...}}, "rss": {"<label>": {"peak_rss_bytes": ...}},
#     "stdout": [...] }
#
# "ops" is parsed from `OPTIME <op> <calls> <total_ns>` lines and "rss"
# from `OPRSS <label> <bytes>` lines the benches print (see bench_util.h);
# the commit and CPU stamps make each artifact attributable to a source
# revision and a machine. These artifacts are the perf baseline later PRs
# are measured against — bench/compare.py diffs two artifact sets, flags
# per-op regressions and warns on per-label RSS growth.
#
# The memory-plane scale ladder (bench_fig8_1m_devices) runs its 10k and
# 100k rungs by default; export SIMDC_BENCH_1M=1 to add the ~GB-scale
# 1,000,000-device rung.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bin_dir="${1:-$repo_root/build/bench}"

benches=("$bin_dir"/bench_*)
if [[ ! -e "${benches[0]}" ]]; then
  if [[ $# -ge 1 ]]; then
    echo "error: no bench_* binaries in $bin_dir" >&2
    exit 1
  fi
  # Default location and nothing built yet: build the Release benches in a
  # dedicated tree. Tests stay off — this path only needs bench_* — and a
  # separate binary dir keeps those cache settings out of the user's build/.
  echo "== bench binaries not found in $bin_dir; building build-bench tree =="
  cmake -B "$repo_root/build-bench" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
    -DSIMDC_BUILD_TESTS=OFF -DSIMDC_BUILD_EXAMPLES=OFF
  cmake --build "$repo_root/build-bench" -j
  bin_dir="$repo_root/build-bench/bench"
  benches=("$bin_dir"/bench_*)
  if [[ ! -e "${benches[0]}" ]]; then
    echo "error: build produced no bench_* binaries in $bin_dir" >&2
    exit 1
  fi
fi

# Stamp the artifacts with the build type of the tree the binaries came
# from, so a Debug-built baseline can't masquerade as a Release one.
build_type="unknown"
if [[ -f "$bin_dir/../CMakeCache.txt" ]]; then
  build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$bin_dir/../CMakeCache.txt")"
  [[ -n "$build_type" ]] || build_type="unknown"
fi
if [[ "$build_type" != "Release" ]]; then
  echo "warning: benches built as '$build_type', not Release; timings are not a perf baseline" >&2
fi

# Provenance stamps: the source commit the binaries were (presumably) built
# from and the CPU they ran on, so a perf trajectory across artifacts is
# attributable to a revision and a machine.
commit="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git -C "$repo_root" diff --quiet HEAD 2>/dev/null; then
  commit="${commit}-dirty"
fi
cpu_model="$(sed -n 's/^model name[[:space:]]*: //p' /proc/cpuinfo 2>/dev/null | head -n1)"
[[ -n "$cpu_model" ]] || cpu_model="$(uname -m)"

for bench in "${benches[@]}"; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name="$(basename "$bench")"
  out_json="$repo_root/BENCH_${name#bench_}.json"
  echo "== $name =="

  start_ns=$(date +%s%N)
  set +e
  stdout="$("$bench" 2>&1)"
  exit_code=$?
  set -e
  end_ns=$(date +%s%N)
  wall_ms=$(( (end_ns - start_ns) / 1000000 ))

  tmp="$(mktemp)"
  printf '%s\n' "$stdout" > "$tmp"
  BENCH_NAME="$name" WALL_MS="$wall_ms" EXIT_CODE="$exit_code" BUILD_TYPE="$build_type" \
  COMMIT="$commit" CPU_MODEL="$cpu_model" \
    python3 - "$out_json" "$tmp" <<'PY'
import json, os, sys
with open(sys.argv[2]) as f:
    lines = f.read().splitlines()
# Fold `OPTIME <op> <calls> <total_ns>` and `OPRSS <label> <bytes>` lines
# (bench_util.h) into per-op timing / per-label memory maps; they stay in
# "stdout" too for human inspection.
ops = {}
rss = {}
for line in lines:
    fields = line.split()
    if line.startswith("OPTIME ") and len(fields) == 4:
        try:
            calls, total_ns = int(fields[2]), int(fields[3])
        except ValueError:
            continue
        ops[fields[1]] = {
            "calls": calls,
            "total_ns": total_ns,
            "ns_per_call": total_ns / calls if calls else 0.0,
        }
    elif line.startswith("OPRSS ") and len(fields) == 3:
        try:
            rss[fields[1]] = {"peak_rss_bytes": int(fields[2])}
        except ValueError:
            continue
doc = {
    "bench": os.environ["BENCH_NAME"],
    "build_type": os.environ["BUILD_TYPE"],
    "commit": os.environ["COMMIT"],
    "cpu_model": os.environ["CPU_MODEL"],
    "wall_ms": int(os.environ["WALL_MS"]),
    "exit_code": int(os.environ["EXIT_CODE"]),
    "ops": ops,
    "rss": rss,
    "stdout": lines,
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY
  rm -f "$tmp"

  echo "   -> ${out_json#$repo_root/} (${wall_ms} ms, exit $exit_code)"
  if [[ $exit_code -ne 0 ]]; then
    echo "error: $name exited with $exit_code" >&2
    exit "$exit_code"
  fi
done

echo "All benches done; artifacts in $repo_root/BENCH_*.json"
