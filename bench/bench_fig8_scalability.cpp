// Reproduces Fig. 8: "Scalability of popular simulators" — average
// single-round training time of SimDC, FedScale and FederatedScope from
// 100 to 100,000 simulated devices on a 200-core cluster.
//
// Expected shape (§VI-B4): below 1,000 devices SimDC is slower (Ray job
// setup, placement groups, per-actor data/model downloads, shared-storage
// communication); FedScale is fastest everywhere but least realistic (no
// device-cloud communication at all); beyond ~10,000 devices the device
// scale dominates and SimDC is comparable to FederatedScope.
//
// Includes the DESIGN.md D4 ablation: SimDC without actor multiplexing
// (one actor per device) to show why actors sequentially simulate
// multiple devices.
#include <chrono>
#include <cstdio>
#include <thread>

#include "baseline/scalability_models.h"
#include "bench_util.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"
#include "sim/event_loop.h"

namespace {

/// Measured (not modelled) engine throughput: one FL experiment over the
/// full synthetic fleet at a given training parallelism. Returns wall
/// seconds and the run result (for the bit-identity cross-check).
double TimedFlRun(const simdc::data::FederatedDataset& dataset,
                  std::size_t parallelism, simdc::core::FlRunResult* out) {
  using namespace simdc;
  sim::EventLoop loop;
  core::FlExperimentConfig config;
  config.rounds = 3;
  config.train.learning_rate = 0.05;
  config.train.epochs = 3;
  config.logical_fraction = 0.5;  // exercise both kernels
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(60.0);
  config.seed = 99;
  config.parallelism = parallelism;
  const auto start = std::chrono::steady_clock::now();
  core::FlEngine engine(loop, dataset, config);
  *out = engine.Run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

int main() {
  using namespace simdc;
  bench::PrintHeader(
      "Fig. 8 — single-round time vs scale (seconds, 200-core cluster)");

  baseline::ClusterParams cluster;  // 200 cores
  baseline::SimDcModel simdc_model(cluster);
  baseline::FedScaleModel fedscale(cluster);
  baseline::FederatedScopeModel fedscope(cluster);
  baseline::SimDcModel::Params no_multiplex_params;
  no_multiplex_params.multiplex_devices_per_actor = false;
  baseline::SimDcModel simdc_no_multiplex(cluster, no_multiplex_params);

  std::printf("%10s %12s %12s %16s %22s\n", "Devices", "SimDC", "FedScale",
              "FederatedScope", "SimDC (no multiplex)");
  bench::PrintRule();
  bool shape_ok = true;
  for (const std::size_t n :
       {100u, 300u, 1000u, 3000u, 10000u, 30000u, 100000u}) {
    const double t_simdc = simdc_model.SingleRoundSeconds(n);
    const double t_fedscale = fedscale.SingleRoundSeconds(n);
    const double t_fedscope = fedscope.SingleRoundSeconds(n);
    const double t_ablation = simdc_no_multiplex.SingleRoundSeconds(n);
    std::printf("%10zu %12.1f %12.1f %16.1f %22.1f\n", n, t_simdc,
                t_fedscale, t_fedscope, t_ablation);
    if (n < 1000 && !(t_simdc > t_fedscale && t_simdc > t_fedscope)) {
      shape_ok = false;
    }
    if (n >= 10000) {
      const double ratio = t_simdc / t_fedscope;
      if (ratio < 0.5 || ratio > 2.0) shape_ok = false;
      if (t_fedscale >= t_simdc) shape_ok = false;
    }
  }
  bench::PrintRule();
  std::printf(
      "Shape checks vs paper: SimDC slower than both below 1k devices;\n"
      "FedScale fastest everywhere; SimDC ~ FederatedScope at >= 10k;\n"
      "device scale dominates beyond 10k: %s\n",
      shape_ok ? "REPRODUCED" : "NOT reproduced");

  // --- Measured engine throughput vs training parallelism ---
  // The table above is the paper's analytic cost model; this part runs the
  // real FlEngine over a synthetic fleet and measures wall time at several
  // widths of the parallelism knob, asserting the results stay
  // bit-identical (the determinism contract that makes the knob safe).
  bench::PrintHeader(
      "Measured: FlEngine wall time vs parallelism (bit-identical results)");
  data::SynthConfig data_config;
  data_config.num_devices = 600;
  data_config.records_per_device_mean = 25;
  data_config.num_test_devices = 50;
  data_config.hash_dim = 1u << 14;
  data_config.seed = 4242;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  core::FlRunResult sequential;
  const double t_seq = TimedFlRun(dataset, 1, &sequential);
  bench::OpTimings::Instance().Record(
      "fl_run_parallelism_1",
      static_cast<std::uint64_t>(t_seq * 1e9));
  std::printf("%14s %10s %10s %12s\n", "parallelism", "wall s", "speedup",
              "identical");
  bench::PrintRule();
  std::printf("%14zu %10.3f %10s %12s\n", std::size_t{1}, t_seq, "1.00x", "-");
  bool deterministic = true;
  for (const std::size_t parallelism : {std::size_t{2}, std::size_t{4}}) {
    core::FlRunResult parallel;
    const double t_par = TimedFlRun(dataset, parallelism, &parallel);
    bench::OpTimings::Instance().Record(
        "fl_run_parallelism_" + std::to_string(parallelism),
        static_cast<std::uint64_t>(t_par * 1e9));
    const bool identical =
        parallel.final_weights == sequential.final_weights &&
        parallel.final_bias == sequential.final_bias &&
        parallel.rounds.size() == sequential.rounds.size();
    deterministic = deterministic && identical;
    std::printf("%14zu %10.3f %9.2fx %12s\n", parallelism, t_par,
                t_par > 0 ? t_seq / t_par : 0.0, identical ? "yes" : "NO");
  }
  bench::PrintRule();
  std::printf("hardware_concurrency = %u\n",
              std::thread::hardware_concurrency());
  std::printf("Parallel runs bit-identical to sequential: %s\n",
              deterministic ? "REPRODUCED" : "NOT reproduced");
  bench::EmitOpTimings();
  return shape_ok && deterministic ? 0 : 1;
}
