// Reproduces Fig. 8: "Scalability of popular simulators" — average
// single-round training time of SimDC, FedScale and FederatedScope from
// 100 to 100,000 simulated devices on a 200-core cluster.
//
// Expected shape (§VI-B4): below 1,000 devices SimDC is slower (Ray job
// setup, placement groups, per-actor data/model downloads, shared-storage
// communication); FedScale is fastest everywhere but least realistic (no
// device-cloud communication at all); beyond ~10,000 devices the device
// scale dominates and SimDC is comparable to FederatedScope.
//
// Includes the DESIGN.md D4 ablation: SimDC without actor multiplexing
// (one actor per device) to show why actors sequentially simulate
// multiple devices.
#include <cstdio>

#include "baseline/scalability_models.h"
#include "bench_util.h"

int main() {
  using namespace simdc;
  bench::PrintHeader(
      "Fig. 8 — single-round time vs scale (seconds, 200-core cluster)");

  baseline::ClusterParams cluster;  // 200 cores
  baseline::SimDcModel simdc_model(cluster);
  baseline::FedScaleModel fedscale(cluster);
  baseline::FederatedScopeModel fedscope(cluster);
  baseline::SimDcModel::Params no_multiplex_params;
  no_multiplex_params.multiplex_devices_per_actor = false;
  baseline::SimDcModel simdc_no_multiplex(cluster, no_multiplex_params);

  std::printf("%10s %12s %12s %16s %22s\n", "Devices", "SimDC", "FedScale",
              "FederatedScope", "SimDC (no multiplex)");
  bench::PrintRule();
  bool shape_ok = true;
  for (const std::size_t n :
       {100u, 300u, 1000u, 3000u, 10000u, 30000u, 100000u}) {
    const double t_simdc = simdc_model.SingleRoundSeconds(n);
    const double t_fedscale = fedscale.SingleRoundSeconds(n);
    const double t_fedscope = fedscope.SingleRoundSeconds(n);
    const double t_ablation = simdc_no_multiplex.SingleRoundSeconds(n);
    std::printf("%10zu %12.1f %12.1f %16.1f %22.1f\n", n, t_simdc,
                t_fedscale, t_fedscope, t_ablation);
    if (n < 1000 && !(t_simdc > t_fedscale && t_simdc > t_fedscope)) {
      shape_ok = false;
    }
    if (n >= 10000) {
      const double ratio = t_simdc / t_fedscope;
      if (ratio < 0.5 || ratio > 2.0) shape_ok = false;
      if (t_fedscale >= t_simdc) shape_ok = false;
    }
  }
  bench::PrintRule();
  std::printf(
      "Shape checks vs paper: SimDC slower than both below 1k devices;\n"
      "FedScale fastest everywhere; SimDC ~ FederatedScope at >= 10k;\n"
      "device scale dominates beyond 10k: %s\n",
      shape_ok ? "REPRODUCED" : "NOT reproduced");
  return shape_ok ? 0 : 1;
}
