// Reproduces Fig. 8: "Scalability of popular simulators" — average
// single-round training time of SimDC, FedScale and FederatedScope from
// 100 to 100,000 simulated devices on a 200-core cluster.
//
// Expected shape (§VI-B4): below 1,000 devices SimDC is slower (Ray job
// setup, placement groups, per-actor data/model downloads, shared-storage
// communication); FedScale is fastest everywhere but least realistic (no
// device-cloud communication at all); beyond ~10,000 devices the device
// scale dominates and SimDC is comparable to FederatedScope.
//
// Includes the DESIGN.md D4 ablation: SimDC without actor multiplexing
// (one actor per device) to show why actors sequentially simulate
// multiple devices.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "baseline/scalability_models.h"
#include "bench_util.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"
#include "sim/event_loop.h"

namespace {

/// Measured (not modelled) engine throughput: one FL experiment over the
/// full synthetic fleet at a given training parallelism. Returns wall
/// seconds and the run result (for the bit-identity cross-check).
double TimedFlRun(const simdc::data::FederatedDataset& dataset,
                  std::size_t parallelism, simdc::core::FlRunResult* out) {
  using namespace simdc;
  sim::EventLoop loop;
  core::FlExperimentConfig config;
  config.rounds = 3;
  config.train.learning_rate = 0.05;
  config.train.epochs = 3;
  config.logical_fraction = 0.5;  // exercise both kernels
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(60.0);
  config.seed = 99;
  config.parallelism = parallelism;
  const auto start = std::chrono::steady_clock::now();
  core::FlEngine engine(loop, dataset, config);
  *out = engine.Run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

int main() {
  using namespace simdc;
  bench::PrintHeader(
      "Fig. 8 — single-round time vs scale (seconds, 200-core cluster)");

  baseline::ClusterParams cluster;  // 200 cores
  baseline::SimDcModel simdc_model(cluster);
  baseline::FedScaleModel fedscale(cluster);
  baseline::FederatedScopeModel fedscope(cluster);
  baseline::SimDcModel::Params no_multiplex_params;
  no_multiplex_params.multiplex_devices_per_actor = false;
  baseline::SimDcModel simdc_no_multiplex(cluster, no_multiplex_params);

  std::printf("%10s %12s %12s %16s %22s\n", "Devices", "SimDC", "FedScale",
              "FederatedScope", "SimDC (no multiplex)");
  bench::PrintRule();
  bool shape_ok = true;
  for (const std::size_t n :
       {100u, 300u, 1000u, 3000u, 10000u, 30000u, 100000u}) {
    const double t_simdc = simdc_model.SingleRoundSeconds(n);
    const double t_fedscale = fedscale.SingleRoundSeconds(n);
    const double t_fedscope = fedscope.SingleRoundSeconds(n);
    const double t_ablation = simdc_no_multiplex.SingleRoundSeconds(n);
    std::printf("%10zu %12.1f %12.1f %16.1f %22.1f\n", n, t_simdc,
                t_fedscale, t_fedscope, t_ablation);
    if (n < 1000 && !(t_simdc > t_fedscale && t_simdc > t_fedscope)) {
      shape_ok = false;
    }
    if (n >= 10000) {
      const double ratio = t_simdc / t_fedscope;
      if (ratio < 0.5 || ratio > 2.0) shape_ok = false;
      if (t_fedscale >= t_simdc) shape_ok = false;
    }
  }
  bench::PrintRule();
  std::printf(
      "Shape checks vs paper: SimDC slower than both below 1k devices;\n"
      "FedScale fastest everywhere; SimDC ~ FederatedScope at >= 10k;\n"
      "device scale dominates beyond 10k: %s\n",
      shape_ok ? "REPRODUCED" : "NOT reproduced");

  // --- Measured engine throughput vs training parallelism ---
  // The table above is the paper's analytic cost model; this part runs the
  // real FlEngine over a synthetic fleet and measures wall time at several
  // widths of the parallelism knob, asserting the results stay
  // bit-identical (the determinism contract that makes the knob safe).
  bench::PrintHeader(
      "Measured: FlEngine wall time vs parallelism (bit-identical results)");
  data::SynthConfig data_config;
  data_config.num_devices = 600;
  data_config.records_per_device_mean = 25;
  data_config.num_test_devices = 50;
  data_config.hash_dim = 1u << 14;
  data_config.seed = 4242;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  core::FlRunResult sequential;
  const double t_seq = TimedFlRun(dataset, 1, &sequential);
  bench::OpTimings::Instance().Record(
      "fl_run_parallelism_1",
      static_cast<std::uint64_t>(t_seq * 1e9));
  std::printf("%14s %10s %10s %12s\n", "parallelism", "wall s", "speedup",
              "identical");
  bench::PrintRule();
  std::printf("%14zu %10.3f %10s %12s\n", std::size_t{1}, t_seq, "1.00x", "-");
  bool deterministic = true;
  for (const std::size_t parallelism : {std::size_t{2}, std::size_t{4}}) {
    core::FlRunResult parallel;
    const double t_par = TimedFlRun(dataset, parallelism, &parallel);
    bench::OpTimings::Instance().Record(
        "fl_run_parallelism_" + std::to_string(parallelism),
        static_cast<std::uint64_t>(t_par * 1e9));
    const bool identical =
        parallel.final_weights == sequential.final_weights &&
        parallel.final_bias == sequential.final_bias &&
        parallel.rounds.size() == sequential.rounds.size();
    deterministic = deterministic && identical;
    std::printf("%14zu %10.3f %9.2fx %12s\n", parallelism, t_par,
                t_par > 0 ? t_seq / t_par : 0.0, identical ? "yes" : "NO");
  }
  bench::PrintRule();
  std::printf("hardware_concurrency = %u\n",
              std::thread::hardware_concurrency());
  std::printf("Parallel runs bit-identical to sequential: %s\n",
              deterministic ? "REPRODUCED" : "NOT reproduced");

  // --- Measured: sharded fleets (FlExperimentConfig::shards) ---
  // The shard plane partitions a 2000-device fleet into N fleets, each
  // with its own event loop + dispatcher advanced on the worker pool and
  // merged into one aggregator in (tick time, message id, shard) order. The
  // bit-identity gate is hard at every width; the wall-clock column is
  // informational on 1-core machines (multi-core runners see the flow
  // plane scale with shard count — the merge itself stays serial by
  // design, so this measures the parallel fraction honestly).
  bench::PrintHeader(
      "Measured: sharded fleets wall time vs width (bit-identical results)");
  data::SynthConfig fleet_config;
  fleet_config.num_devices = 2000;
  fleet_config.records_per_device_mean = 8;
  fleet_config.num_test_devices = 50;
  fleet_config.hash_dim = 1u << 14;
  fleet_config.seed = 777;
  const auto fleet = data::GenerateSyntheticAvazu(fleet_config);

  // Serial-merge profile of the aggregation service, split into the
  // accumulate kernel (FedAvg Adds / partial-sum flushes) vs admission
  // bookkeeping (staleness, decode-failure accounting, staging). Read off
  // the engine BEFORE it is destroyed.
  struct AggProfile {
    std::uint64_t accumulate_ns = 0;
    std::uint64_t bookkeeping_ns = 0;
  };
  auto timed_sharded = [&](std::size_t shards, flow::DecodePlane plane,
                           cloud::AggregatePlane agg_plane,
                           core::FlRunResult* out,
                           AggProfile* profile = nullptr) {
    using namespace simdc;
    sim::EventLoop loop;
    core::FlExperimentConfig config;
    config.rounds = 3;
    config.train.learning_rate = 0.05;
    config.train.epochs = 1;
    config.logical_fraction = 0.5;
    config.trigger = cloud::AggregationTrigger::kScheduled;
    config.schedule_period = Seconds(60.0);
    config.seed = 1234;
    // Width-invariant regime: pass-through ticks, disengaged rate limiter,
    // message-keyed drops (see FlExperimentConfig::shards).
    config.strategy = flow::RealtimeAccumulated{
        {1}, 0.1, flow::kShardWidthInvariantCapacity};
    config.shards = shards;
    config.decode_plane = plane;
    config.aggregate_plane = agg_plane;
    // Pin the pool width so ONLY the shard count varies between rows:
    // training parallelism is measured by the previous section, and a
    // per-row pool width would fold it into the shard column.
    config.parallelism = 8;
    const auto start = std::chrono::steady_clock::now();
    core::FlEngine engine(loop, fleet, config);
    *out = engine.Run();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (profile != nullptr) {
      profile->accumulate_ns = engine.aggregation().serial_accumulate_ns();
      profile->bookkeeping_ns = engine.aggregation().serial_bookkeeping_ns();
    }
    return std::chrono::duration<double>(elapsed).count();
  };

  auto identical_runs = [](const core::FlRunResult& a,
                           const core::FlRunResult& b) {
    bool identical = a.final_weights == b.final_weights &&
                     a.final_bias == b.final_bias &&
                     a.messages_dropped == b.messages_dropped &&
                     a.rounds.size() == b.rounds.size();
    for (std::size_t r = 0; identical && r < a.rounds.size(); ++r) {
      identical = a.rounds[r].time == b.rounds[r].time &&
                  a.rounds[r].clients == b.rounds[r].clients &&
                  a.rounds[r].samples == b.rounds[r].samples;
    }
    return identical;
  };

  core::FlRunResult unsharded;
  const double t_one = timed_sharded(1, flow::DecodePlane::kLegacy,
                                     cloud::AggregatePlane::kLegacy,
                                     &unsharded);
  bench::OpTimings::Instance().Record(
      "fig8_shards_1", static_cast<std::uint64_t>(t_one * 1e9));
  std::printf("%10s %10s %10s %12s\n", "shards", "wall s", "speedup",
              "identical");
  bench::PrintRule();
  std::printf("%10zu %10.3f %10s %12s\n", std::size_t{1}, t_one, "1.00x", "-");
  bool sharded_identical = true;
  for (const std::size_t shards :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::FlRunResult sharded;
    const double t_n =
        timed_sharded(shards, flow::DecodePlane::kLegacy,
                      cloud::AggregatePlane::kLegacy, &sharded);
    bench::OpTimings::Instance().Record(
        "fig8_shards_" + std::to_string(shards),
        static_cast<std::uint64_t>(t_n * 1e9));
    const bool identical = identical_runs(sharded, unsharded);
    sharded_identical = sharded_identical && identical;
    std::printf("%10zu %10.3f %9.2fx %12s\n", shards, t_n,
                t_n > 0 ? t_one / t_n : 0.0, identical ? "yes" : "NO");
  }
  bench::PrintRule();
  std::printf("Sharded fleets bit-identical to the unsharded run: %s\n",
              sharded_identical ? "REPRODUCED" : "NOT reproduced");

  // --- Measured: decoded payload plane vs the legacy (serial-decode) ---
  // Same fleet, decode_plane = kDecoded: dispatch ticks fetch + decode
  // blobs (on shard workers when sharded) and the serial aggregator only
  // admits + accumulates. The gate is hard bit-identity against the
  // legacy unsharded reference at every width; wall time shows the serial
  // fraction shrinking on multi-core machines. On a 1-core container the
  // decoded rows at shard widths >= 2 run ~25-35% SLOWER than legacy —
  // moving decode into the pool-advanced region buys nothing without
  // cores and pays channel buffering + allocator contention — so read the
  // speedup column as the honest price single-core machines pay for the
  // multi-core win (see FlExperimentConfig::decode_plane).
  bench::PrintHeader(
      "Measured: decoded payload plane vs legacy (bit-identical results)");
  std::printf("%10s %10s %14s %14s %12s\n", "shards", "wall s", "vs legacy-1",
              "accum ms", "identical");
  bench::PrintRule();
  bool decoded_identical = true;
  // Serial-accumulate profile of the LEGACY aggregate plane at each width —
  // the "before" side of the partial-sum comparison below. The decoded rows
  // are pinned to aggregate_plane = kLegacy so the inline per-message FedAvg
  // Add (the last serial O(msgs*dim) loop) is what gets timed here.
  AggProfile legacy_profile[9] = {};
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::FlRunResult decoded;
    AggProfile profile;
    const double t_n =
        timed_sharded(shards, flow::DecodePlane::kDecoded,
                      cloud::AggregatePlane::kLegacy, &decoded, &profile);
    legacy_profile[shards] = profile;
    bench::OpTimings::Instance().Record(
        "fig8_decoded_shards_" + std::to_string(shards),
        static_cast<std::uint64_t>(t_n * 1e9));
    bench::OpTimings::Instance().Record(
        "fig8_serial_accumulate_w" + std::to_string(shards),
        profile.accumulate_ns);
    bench::OpTimings::Instance().Record(
        "fig8_serial_bookkeeping_w" + std::to_string(shards),
        profile.bookkeeping_ns);
    const bool identical = identical_runs(decoded, unsharded);
    decoded_identical = decoded_identical && identical;
    std::printf("%10zu %10.3f %13.2fx %14.3f %12s\n", shards, t_n,
                t_n > 0 ? t_one / t_n : 0.0, profile.accumulate_ns / 1e6,
                identical ? "yes" : "NO");
  }
  bench::PrintRule();
  std::printf("Decoded plane bit-identical to the legacy plane: %s\n",
              decoded_identical ? "REPRODUCED" : "NOT reproduced");

  // --- Measured: partial-sum aggregate plane vs the serial merge ---
  // Same decoded fleet, aggregate_plane = kPartialSum: decoded deliveries
  // are staged O(1) at admission and flushed through per-lane FedAvg
  // partials merged in ascending lane order. The cascaded compensated
  // accumulator makes the result order-invariant, so the gate is hard
  // bit-identity against the SAME legacy unsharded reference at every
  // width. The accumulate column is the flush cost that replaces the
  // legacy inline-Add column above; the >= 2x improvement gate at width 8
  // is hard only on machines with >= 4 cores (a 1-core container runs the
  // lanes sequentially and pays staging overhead instead — warn-only).
  bench::PrintHeader(
      "Measured: partial-sum aggregate plane (bit-identical results)");
  std::printf("%10s %10s %14s %14s %12s\n", "shards", "wall s", "vs legacy-1",
              "accum ms", "identical");
  bench::PrintRule();
  bool partial_identical = true;
  AggProfile partial_profile[9] = {};
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::FlRunResult partial;
    AggProfile profile;
    const double t_n =
        timed_sharded(shards, flow::DecodePlane::kDecoded,
                      cloud::AggregatePlane::kPartialSum, &partial, &profile);
    partial_profile[shards] = profile;
    bench::OpTimings::Instance().Record(
        "fig8_partial_shards_" + std::to_string(shards),
        static_cast<std::uint64_t>(t_n * 1e9));
    bench::OpTimings::Instance().Record(
        "fig8_partial_accumulate_w" + std::to_string(shards),
        profile.accumulate_ns);
    bench::OpTimings::Instance().Record(
        "fig8_partial_bookkeeping_w" + std::to_string(shards),
        profile.bookkeeping_ns);
    const bool identical = identical_runs(partial, unsharded);
    partial_identical = partial_identical && identical;
    std::printf("%10zu %10.3f %13.2fx %14.3f %12s\n", shards, t_n,
                t_n > 0 ? t_one / t_n : 0.0, profile.accumulate_ns / 1e6,
                identical ? "yes" : "NO");
  }
  bench::PrintRule();
  std::printf("Partial-sum plane bit-identical to the legacy plane: %s\n",
              partial_identical ? "REPRODUCED" : "NOT reproduced");
  const double accumulate_speedup =
      partial_profile[8].accumulate_ns > 0
          ? static_cast<double>(legacy_profile[8].accumulate_ns) /
                static_cast<double>(partial_profile[8].accumulate_ns)
          : 0.0;
  const bool multi_core = std::thread::hardware_concurrency() >= 4;
  const bool accumulate_fast = accumulate_speedup >= 2.0;
  std::printf("Serial-accumulate speedup at 8 shards: %.2fx (gate: >= 2x, %s"
              " on %u-core)\n",
              accumulate_speedup, multi_core ? "hard" : "warn-only",
              std::thread::hardware_concurrency());
  if (!accumulate_fast && !multi_core) {
    std::printf("WARN: accumulate speedup below 2x — expected on < 4 cores, "
                "not gating\n");
  }

  // --- Measured: durability plane overhead (off vs log vs checkpoint) ---
  // The durable store turns every payload Put/Delete into a framed record
  // in an append-only log, group-committed once per dispatch tick / round
  // boundary, and (in log+checkpoint mode) snapshots the aggregator at
  // each round boundary. Two hard gates: the durable runs stay
  // bit-identical to durability=off, and the slowest durable mode costs
  // at most 1.25x the off run (plus a 50 ms noise floor for 1-core CI
  // containers) — group commit is what keeps the hot path O(1) syscalls
  // per tick.
  bench::PrintHeader(
      "Measured: durability plane overhead (bit-identical results)");
  // Compute-dominated workload: CTR features are sparse, so training cost
  // scales with records x epochs while the logged payload scales with the
  // dense model dim — few heavy devices with a small model measure the
  // durability plane against a realistic compute/IO ratio instead of
  // drowning the run in payload bytes.
  data::SynthConfig durable_data;
  durable_data.num_devices = 100;
  durable_data.records_per_device_mean = 400;
  durable_data.num_test_devices = 20;
  durable_data.hash_dim = 1u << 10;
  durable_data.seed = 2025;
  const auto durable_fleet = data::GenerateSyntheticAvazu(durable_data);
  const std::filesystem::path durable_root =
      std::filesystem::temp_directory_path() / "simdc_bench_fig8_durable";
  std::filesystem::remove_all(durable_root);
  auto timed_durable = [&](persist::DurabilityMode mode, const char* tag,
                           core::FlRunResult* out) {
    sim::EventLoop loop;
    core::FlExperimentConfig config;
    config.rounds = 3;
    config.train.learning_rate = 0.05;
    config.train.epochs = 6;
    config.logical_fraction = 0.5;
    config.trigger = cloud::AggregationTrigger::kScheduled;
    config.schedule_period = Seconds(60.0);
    config.seed = 99;
    config.parallelism = 2;
    config.durability.mode = mode;
    if (mode != persist::DurabilityMode::kOff) {
      const auto dir = durable_root / tag;
      std::filesystem::create_directories(dir);
      config.durability.dir = dir.string();
    }
    const auto start = std::chrono::steady_clock::now();
    core::FlEngine engine(loop, durable_fleet, config);
    *out = engine.Run();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count();
  };

  core::FlRunResult durable_off, durable_log, durable_ckpt;
  const double t_off =
      timed_durable(persist::DurabilityMode::kOff, "off", &durable_off);
  const double t_log =
      timed_durable(persist::DurabilityMode::kLog, "log", &durable_log);
  const double t_ckpt = timed_durable(persist::DurabilityMode::kLogCheckpoint,
                                      "ckpt", &durable_ckpt);
  bench::OpTimings::Instance().Record(
      "fig8_durability_off", static_cast<std::uint64_t>(t_off * 1e9));
  bench::OpTimings::Instance().Record(
      "fig8_durability_log", static_cast<std::uint64_t>(t_log * 1e9));
  bench::OpTimings::Instance().Record(
      "fig8_durability_ckpt", static_cast<std::uint64_t>(t_ckpt * 1e9));

  const double ceiling = t_off * 1.25 + 0.05;  // noise floor for tiny runs
  const bool durable_fast = t_log <= ceiling && t_ckpt <= ceiling;
  const bool durable_identical = identical_runs(durable_log, durable_off) &&
                                 identical_runs(durable_ckpt, durable_off);
  std::printf("%16s %10s %12s %12s\n", "durability", "wall s", "vs off",
              "identical");
  bench::PrintRule();
  std::printf("%16s %10.3f %12s %12s\n", "off", t_off, "1.00x", "-");
  std::printf("%16s %10.3f %11.2fx %12s\n", "log", t_log,
              t_off > 0 ? t_log / t_off : 0.0,
              identical_runs(durable_log, durable_off) ? "yes" : "NO");
  std::printf("%16s %10.3f %11.2fx %12s\n", "log+checkpoint", t_ckpt,
              t_off > 0 ? t_ckpt / t_off : 0.0,
              identical_runs(durable_ckpt, durable_off) ? "yes" : "NO");
  bench::PrintRule();
  std::printf("Durable runs bit-identical to durability=off: %s\n",
              durable_identical ? "REPRODUCED" : "NOT reproduced");
  std::printf("Durable overhead within 1.25x ceiling (%.3fs): %s\n", ceiling,
              durable_fast ? "yes" : "NO");
  std::filesystem::remove_all(durable_root);

  bench::EmitOpTimings();
  return shape_ok && deterministic && sharded_identical &&
                 decoded_identical && partial_identical &&
                 (accumulate_fast || !multi_core) && durable_identical &&
                 durable_fast
             ? 0
             : 1;
}
