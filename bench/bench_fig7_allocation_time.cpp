// Reproduces Fig. 7: "Execution times vs. scale" for the five fixed
// allocation ratios and the hybrid allocation optimization.
//
// §VI-B3: at small scales physical-device execution is dominated by APK
// startup (λ), so logical-leaning allocations win; at large scales the
// per-round training time dominates and the device operators' faster
// native implementation wins; the optimizer (red line in the paper) is
// never slower than any fixed ratio.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "sched/allocation.h"
#include "device/grade.h"

int main() {
  using namespace simdc;
  bench::PrintHeader("Fig. 7 — task execution time vs scale (seconds)");

  const std::size_t scales[] = {4, 20, 100, 500};
  const double kTypes[] = {1.0, 0.75, 0.5, 0.25, 0.0};

  std::printf("%-12s", "Scale");
  for (int t = 1; t <= 5; ++t) std::printf("  Type %d", t);
  std::printf("  Optimized\n");
  bench::PrintRule();

  bool optimizer_always_best = true;
  for (const std::size_t scale : scales) {
    std::vector<sched::GradeAllocationInput> grades;
    for (const auto grade_spec :
         {device::HighGradeSpec(), device::LowGradeSpec()}) {
      sched::GradeAllocationInput g;
      g.total_devices = scale;
      // No benchmarking phones here: Fig. 7 times the allocation ratios
      // themselves, and a reserved benchmarking phone would put the λ
      // floor under every type, masking the small-scale spread.
      g.benchmarking = 0;
      // Paper cluster: 200 CPU cores of unit bundles split between grades.
      g.logical_bundles = 100;
      g.bundles_per_device = grade_spec.unit_bundles;
      g.phones = grade_spec.grade == device::DeviceGrade::kHigh ? 12 : 8;
      g.alpha_s = grade_spec.alpha_s;
      g.beta_s = grade_spec.beta_s;
      g.lambda_s = grade_spec.lambda_s;
      grades.push_back(g);
    }

    std::printf("(%3zu,%3zu)  ", scale, scale);
    double best_fixed = 1e30;
    for (const double type : kTypes) {
      const auto x = sched::FixedRatioAllocation(grades, type);
      const double t = sched::PredictMakespan(grades, x);
      best_fixed = std::min(best_fixed, t);
      std::printf(" %7.1f", t);
    }
    const auto optimal = sched::SolveHybridAllocation(grades);
    if (!optimal.ok()) {
      std::fprintf(stderr, "optimizer failed: %s\n",
                   optimal.error().ToString().c_str());
      return 1;
    }
    std::printf("  %9.1f\n", optimal->total_seconds);
    if (optimal->total_seconds > best_fixed + 1e-9) {
      optimizer_always_best = false;
    }

    // Per-solve wall time at this scale. The candidate set grows with the
    // total batch-boundary count B, so this measures the O(B log B)
    // candidate generation + binary search directly.
    const std::size_t reps = scale <= 100 ? 2000 : 400;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      const auto solved = sched::SolveHybridAllocation(grades);
      if (!solved.ok()) return 1;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const auto total_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    bench::OpTimings::Instance().Record(
        "solve_hybrid_scale_" + std::to_string(scale), total_ns, reps);
  }
  bench::PrintRule();
  bench::EmitOpTimings();
  std::printf(
      "Shape checks vs paper: small scales favor logical-heavy types (APK\n"
      "startup dominates); the optimizer's time is <= every fixed ratio at\n"
      "every scale: %s\n",
      optimizer_always_best ? "REPRODUCED" : "NOT reproduced");
  return optimizer_always_best ? 0 : 1;
}
