// Google-benchmark microbenchmarks for SimDC's hot kernels: local LR
// training (both operators), FedAvg accumulation, model serialization,
// AUC discretization and ranking, event-loop throughput, and synthetic
// data generation. These quantify the per-device costs that the Fig. 7/8
// cost models parameterize. After the google-benchmark run, a custom main
// hand-times the AUC rank paths and emits OPTIME lines so the
// bench/compare.py regression gate sees them.
#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "bench_util.h"
#include "cloud/storage.h"
#include "common/rng.h"
#include "data/synth_avazu.h"
#include "device/grade.h"
#include "flow/rate_functions.h"
#include "flow/strategy.h"
#include "ml/fedavg.h"
#include "ml/metrics.h"
#include "ml/operators.h"
#include "sched/allocation.h"
#include "sim/event_loop.h"

namespace {

using namespace simdc;

const data::FederatedDataset& Shards() {
  static const auto dataset = [] {
    data::SynthConfig config;
    config.num_devices = 64;
    config.records_per_device_mean = 20;
    config.hash_dim = 1u << 14;
    config.seed = 5;
    return data::GenerateSyntheticAvazu(config);
  }();
  return dataset;
}

void BM_LocalTrainServer(benchmark::State& state) {
  const auto& dataset = Shards();
  ml::ServerLrOperator op;
  ml::TrainConfig config;
  config.epochs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::LrModel model(dataset.hash_dim);
    op.Train(model, dataset.devices[0].examples, config);
    benchmark::DoNotOptimize(model.bias());
  }
}
BENCHMARK(BM_LocalTrainServer)->Arg(1)->Arg(10);

void BM_LocalTrainMobile(benchmark::State& state) {
  const auto& dataset = Shards();
  ml::MobileLrOperator op;
  ml::TrainConfig config;
  config.epochs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::LrModel model(dataset.hash_dim);
    op.Train(model, dataset.devices[0].examples, config);
    benchmark::DoNotOptimize(model.bias());
  }
}
BENCHMARK(BM_LocalTrainMobile)->Arg(1)->Arg(10);

void BM_FedAvgAccumulate(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  ml::LrModel model(1u << 14);
  for (auto _ : state) {
    ml::FedAvgAggregator aggregator(1u << 14);
    for (std::size_t c = 0; c < clients; ++c) {
      benchmark::DoNotOptimize(aggregator.Add(model, 10).ok());
    }
    benchmark::DoNotOptimize(aggregator.Aggregate().ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(clients));
}
BENCHMARK(BM_FedAvgAccumulate)->Arg(8)->Arg(64)->Arg(512);

void BM_ModelSerializeRoundTrip(benchmark::State& state) {
  ml::LrModel model(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    const auto bytes = model.ToBytes();
    auto restored = ml::LrModel::FromBytes(bytes);
    benchmark::DoNotOptimize(restored.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(model.SerializedSize()));
}
BENCHMARK(BM_ModelSerializeRoundTrip)->Arg(1 << 13)->Arg(1 << 16);

void BM_BlobStorePutGet(benchmark::State& state) {
  cloud::BlobStore store;
  const std::vector<std::byte> payload(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const BlobId id = store.Put(payload);
    benchmark::DoNotOptimize(store.Get(id).ok());
    benchmark::DoNotOptimize(store.Delete(id).ok());
  }
}
BENCHMARK(BM_BlobStorePutGet)->Arg(1 << 12)->Arg(1 << 18);

void BM_DiscretizeRate(benchmark::State& state) {
  const auto curve = flow::NormalCurve(1.0);
  const auto total = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto plan = flow::DiscretizeRate(curve, Minutes(1.0), total, 700.0);
    benchmark::DoNotOptimize(plan.size());
  }
}
BENCHMARK(BM_DiscretizeRate)->Arg(1000)->Arg(100000);

void BM_EventLoopThroughput(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventLoop loop;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      loop.ScheduleAt(static_cast<SimTime>(i), [&fired] { ++fired; });
    }
    loop.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventLoopThroughput)->Arg(1024)->Arg(65536);

void BM_Evaluate(benchmark::State& state) {
  // Single-pass Evaluate: accuracy + logloss + AUC from one forward pass.
  const auto& dataset = Shards();
  ml::LrModel model(dataset.hash_dim);
  ml::ServerLrOperator op;
  op.Train(model, dataset.devices[0].examples, {});
  std::vector<data::Example> pool;
  for (const auto& device : dataset.devices) {
    pool.insert(pool.end(), device.examples.begin(), device.examples.end());
  }
  for (auto _ : state) {
    const auto report = ml::Evaluate(model, pool);
    benchmark::DoNotOptimize(report.auc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pool.size()));
}
BENCHMARK(BM_Evaluate);

void BM_AucRankPath(benchmark::State& state) {
  // The AUC rank statistic at eval-cap scale, pinned to one sort path:
  // Arg(0) = comparison pair-sort, Arg(1) = LSD radix over order-
  // preserving keys. Identical bits, different wall time.
  const auto n = static_cast<std::size_t>(state.range(1));
  data::SynthConfig config;
  config.num_devices = 64;
  config.records_per_device_mean = n / 64 + 1;
  config.hash_dim = 1u << 14;
  config.seed = 11;
  const auto dataset = data::GenerateSyntheticAvazu(config);
  ml::LrModel model(dataset.hash_dim);
  ml::ServerLrOperator op;
  op.Train(model, dataset.devices[0].examples, {});
  std::vector<data::Example> pool;
  for (const auto& device : dataset.devices) {
    for (const auto& example : device.examples) {
      if (pool.size() < n) pool.push_back(example);
    }
  }
  const std::size_t saved = ml::GetAucRadixThreshold();
  ml::SetAucRadixThreshold(
      state.range(0) == 0 ? std::numeric_limits<std::size_t>::max() : 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::Auc(model, pool));
  }
  ml::SetAucRadixThreshold(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pool.size()));
}
BENCHMARK(BM_AucRankPath)
    ->ArgsProduct({{0, 1}, {4096, 20000}});

void BM_SolveHybridAllocation(benchmark::State& state) {
  // Fig. 7 solver: candidate generation dominates at large device counts.
  const auto scale = static_cast<std::size_t>(state.range(0));
  std::vector<sched::GradeAllocationInput> grades;
  for (const auto grade_spec :
       {device::HighGradeSpec(), device::LowGradeSpec()}) {
    sched::GradeAllocationInput g;
    g.total_devices = scale;
    g.logical_bundles = 100;
    g.bundles_per_device = grade_spec.unit_bundles;
    g.phones = grade_spec.grade == device::DeviceGrade::kHigh ? 12 : 8;
    g.alpha_s = grade_spec.alpha_s;
    g.beta_s = grade_spec.beta_s;
    g.lambda_s = grade_spec.lambda_s;
    grades.push_back(g);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::SolveHybridAllocation(grades).ok());
  }
}
BENCHMARK(BM_SolveHybridAllocation)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EventLoopCancelHeavy(benchmark::State& state) {
  // Schedule n events, cancel every other one, then drain: exercises the
  // tombstone path on pop (hash-set lookup per event).
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventLoop loop;
    std::vector<sim::EventHandle> handles;
    handles.reserve(events);
    for (std::size_t i = 0; i < events; ++i) {
      handles.push_back(loop.ScheduleAt(static_cast<SimTime>(i), [] {}));
    }
    for (std::size_t i = 0; i < events; i += 2) {
      benchmark::DoNotOptimize(loop.Cancel(handles[i]));
    }
    loop.Run();
    benchmark::DoNotOptimize(loop.processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventLoopCancelHeavy)->Arg(1024)->Arg(65536);

void BM_SyntheticDataGeneration(benchmark::State& state) {
  data::SynthConfig config;
  config.num_devices = static_cast<std::size_t>(state.range(0));
  config.records_per_device_mean = 20;
  config.hash_dim = 1u << 14;
  for (auto _ : state) {
    const auto dataset = data::GenerateSyntheticAvazu(config);
    benchmark::DoNotOptimize(dataset.TotalExamples());
  }
}
BENCHMARK(BM_SyntheticDataGeneration)->Arg(100)->Arg(1000);

/// Hand-timed OPTIME ops for the compare.py gate: the AUC rank statistic
/// at eval-cap scale (20k scores — FlEngine's default eval_cap) on each
/// sort path. Deterministic inputs; enough repeats to clear the gate's
/// 1 ms noise floor.
void EmitAucRankOpTimings() {
  data::SynthConfig config;
  config.num_devices = 64;
  config.records_per_device_mean = 320;
  config.hash_dim = 1u << 14;
  config.seed = 23;
  const auto dataset = data::GenerateSyntheticAvazu(config);
  ml::LrModel model(dataset.hash_dim);
  ml::ServerLrOperator op;
  op.Train(model, dataset.devices[0].examples, {});
  std::vector<data::Example> pool;
  for (const auto& device : dataset.devices) {
    for (const auto& example : device.examples) {
      if (pool.size() < 20000) pool.push_back(example);
    }
  }
  const std::size_t saved = ml::GetAucRadixThreshold();
  constexpr int kRepeats = 50;
  double sink = 0.0;
  for (const bool radix : {false, true}) {
    ml::SetAucRadixThreshold(
        radix ? 0 : std::numeric_limits<std::size_t>::max());
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRepeats; ++i) sink += ml::Auc(model, pool);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    bench::OpTimings::Instance().Record(
        radix ? "auc_rank_radix_20k" : "auc_rank_sort_20k",
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        kRepeats);
  }
  ml::SetAucRadixThreshold(saved);
  benchmark::DoNotOptimize(sink);
}

/// Hand-timed OPTIME ops for the FedAvg cascade kernels, plus the
/// bit-identity asserts between kernel variants: fedavg_add_scalar (span
/// reference loop) vs fedavg_add_simd (restrict-qualified pointer loop)
/// must produce equal bits, and shard_reduce_{2,4,8} (k-way partial
/// aggregators merged ascending) must publish the same model bits as one
/// serial aggregator. Returns false on any mismatch so the bench exits
/// non-zero — the same hard gate style as the fig8 equivalence checks.
bool EmitFedAvgKernelOpTimings() {
  constexpr std::uint32_t kDim = 1u << 14;
  constexpr int kRepeats = 40;
  bool identical = true;

  // Deterministic adversarial weights: mixed magnitudes and signs.
  Rng rng(0x5EED);
  std::vector<float> weights(kDim);
  for (auto& w : weights) {
    const double magnitude =
        std::pow(10.0, static_cast<double>(rng() % 11) - 5.0);
    w = static_cast<float>((rng() & 1 ? 1.0 : -1.0) * magnitude);
  }

  // fedavg_add_scalar vs fedavg_add_simd over identical inputs.
  std::vector<double> sum_a(kDim, 0.0), c1_a(kDim, 0.0), c2_a(kDim, 0.0);
  const auto scalar_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRepeats; ++i) {
    ml::kernels::CascadeAddScalar(weights, static_cast<double>(i + 1), sum_a,
                                  c1_a, c2_a);
  }
  const auto scalar_elapsed = std::chrono::steady_clock::now() - scalar_start;
  bench::OpTimings::Instance().Record(
      "fedavg_add_scalar",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(scalar_elapsed)
              .count()),
      kRepeats);

  std::vector<double> sum_b(kDim, 0.0), c1_b(kDim, 0.0), c2_b(kDim, 0.0);
  const auto simd_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRepeats; ++i) {
    ml::kernels::CascadeAdd(weights.data(), kDim, static_cast<double>(i + 1),
                            sum_b.data(), c1_b.data(), c2_b.data());
  }
  const auto simd_elapsed = std::chrono::steady_clock::now() - simd_start;
  bench::OpTimings::Instance().Record(
      "fedavg_add_simd",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(simd_elapsed)
              .count()),
      kRepeats);
  if (sum_a != sum_b || c1_a != c1_b || c2_a != c2_b) {
    std::fprintf(stderr,
                 "BIT MISMATCH: fedavg_add_simd != fedavg_add_scalar\n");
    identical = false;
  }

  // shard_reduce_{2,4,8}: k partial aggregators + ascending MergeFrom vs
  // one serial aggregator over the same update multiset.
  constexpr std::size_t kClients = 64;
  std::vector<ml::LrModel> models;
  std::vector<std::size_t> samples;
  for (std::size_t c = 0; c < kClients; ++c) {
    ml::LrModel model(kDim);
    for (std::uint32_t i = 0; i < kDim; ++i) {
      model.weights()[i] = weights[(i + c) % kDim];
    }
    model.bias() = static_cast<float>(c) - 31.5f;
    models.push_back(std::move(model));
    samples.push_back(1 + c % 9);
  }
  ml::FedAvgAggregator serial(kDim);
  for (std::size_t c = 0; c < kClients; ++c) {
    if (!serial.Add(models[c], samples[c]).ok()) identical = false;
  }
  const auto serial_model = serial.Aggregate();
  if (!serial_model.ok()) identical = false;

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    const auto start = std::chrono::steady_clock::now();
    ml::LrModel reduced(0);
    for (int rep = 0; rep < kRepeats; ++rep) {
      std::vector<ml::FedAvgAggregator> partials;
      for (std::size_t s = 0; s < shards; ++s) partials.emplace_back(kDim);
      for (std::size_t c = 0; c < kClients; ++c) {
        if (!partials[c % shards].Add(models[c], samples[c]).ok()) {
          identical = false;
        }
      }
      ml::FedAvgAggregator merged(kDim);
      for (const auto& partial : partials) merged.MergeFrom(partial);
      auto model = merged.Aggregate();
      if (!model.ok()) {
        identical = false;
        continue;
      }
      reduced = std::move(*model);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    bench::OpTimings::Instance().Record(
        "shard_reduce_" + std::to_string(shards),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        kRepeats);
    if (serial_model.ok() &&
        (std::memcmp(reduced.weights().data(), serial_model->weights().data(),
                     kDim * sizeof(float)) != 0 ||
         std::bit_cast<std::uint32_t>(reduced.bias()) !=
             std::bit_cast<std::uint32_t>(serial_model->bias()))) {
      std::fprintf(stderr,
                   "BIT MISMATCH: shard_reduce_%zu != serial aggregate\n",
                   shards);
      identical = false;
    }
  }
  std::fprintf(stderr, "fedavg kernel bit-identity: %s\n",
               identical ? "OK" : "FAILED");
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  EmitAucRankOpTimings();
  const bool kernels_identical = EmitFedAvgKernelOpTimings();
  simdc::bench::EmitOpTimings();
  return kernels_identical ? 0 : 1;
}
