// Reproduces Fig. 11: "The impact of device dropout on different data
// distribution."
//
// §VI-C2: 1,000 devices in the real-time dispatching scenario with
// dropout probabilities {0, 0.3, 0.7, 0.9} under a timed (scheduled)
// aggregation strategy.
//   (a) identically distributed data: test accuracy differences across
//       dropout levels are negligible;
//   (b) differentially distributed data (70% of devices positive-heavy,
//       30% negative-heavy): as dropout grows, convergence becomes
//       unstable and accuracy in the convergence phase decreases.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"

namespace {

using namespace simdc;

core::FlRunResult RunWithDropout(const data::FederatedDataset& dataset,
                                 double dropout, ThreadPool& pool) {
  sim::EventLoop loop;
  core::FlExperimentConfig config;
  config.rounds = 10;
  config.train.learning_rate = 0.1;
  config.train.epochs = 4;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(60.0);
  config.strategy = flow::RealtimeAccumulated{{1}, dropout};
  config.seed = 23;
  core::FlEngine engine(loop, dataset, config, &pool);
  return engine.Run();
}

double Volatility(const core::FlRunResult& result) {
  RunningStats deltas;
  for (std::size_t i = 4; i < result.rounds.size(); ++i) {
    deltas.Add(std::abs(result.rounds[i].test_accuracy -
                        result.rounds[i - 1].test_accuracy));
  }
  return deltas.mean();
}

void PrintBlock(const char* title,
                const std::vector<core::FlRunResult>& results,
                const double* dropouts) {
  std::printf("\n%s\n", title);
  std::printf("%8s", "Round");
  for (int d = 0; d < 4; ++d) std::printf("  p=%.1f  ", dropouts[d]);
  std::printf("\n");
  simdc::bench::PrintRule();
  for (std::size_t round = 0; round < 10; ++round) {
    std::printf("%8zu", round + 1);
    for (const auto& result : results) {
      if (round < result.rounds.size()) {
        std::printf("  %.4f ", result.rounds[round].test_accuracy);
      } else {
        std::printf("  %7s", "-");
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 11 — impact of device dropout under IID vs non-IID data\n"
      "(1000 devices, real-time dispatching, timed aggregation)");

  ThreadPool pool(0);
  const double dropouts[] = {0.0, 0.3, 0.7, 0.9};

  data::SynthConfig data_config;
  data_config.num_devices = 1000;
  data_config.records_per_device_mean = 12;
  data_config.num_test_devices = 150;  // large pool: ~0.05% per flipped
                                       // prediction, so curves are smooth
  data_config.hash_dim = 1u << 13;
  data_config.distribution = data::LabelDistribution::kPolarized;
  data_config.polarized_positive_fraction = 0.7;  // Fig. 11b's 70/30 split
  data_config.seed = 77;
  const auto noniid = data::GenerateSyntheticAvazu(data_config);
  const auto iid = data::RepartitionIid(noniid, 99);

  std::vector<core::FlRunResult> iid_results, noniid_results;
  for (const double p : dropouts) {
    iid_results.push_back(RunWithDropout(iid, p, pool));
  }
  for (const double p : dropouts) {
    noniid_results.push_back(RunWithDropout(noniid, p, pool));
  }

  PrintBlock("(a) Identically distributed — test accuracy per round",
             iid_results, dropouts);
  PrintBlock("(b) Differentially distributed (70% pos-heavy / 30% "
             "neg-heavy) — test accuracy per round",
             noniid_results, dropouts);

  bench::PrintRule();
  const double iid_gap =
      std::abs(iid_results[0].rounds.back().test_accuracy -
               iid_results[3].rounds.back().test_accuracy);
  const double vol_clean = Volatility(noniid_results[0]);
  const double vol_heavy = Volatility(noniid_results[3]);
  std::printf(
      "IID: |ACC(p=0) - ACC(p=0.9)| at round 10 = %.4f (negligible: %s)\n",
      iid_gap, iid_gap < 0.05 ? "yes" : "NO");
  std::printf(
      "Non-IID: convergence volatility grows with dropout: %.4f (p=0) vs "
      "%.4f (p=0.9): %s\n",
      vol_clean, vol_heavy, vol_heavy > vol_clean ? "yes" : "NO");
  const bool reproduced = iid_gap < 0.05 && vol_heavy > vol_clean;
  std::printf("Fig. 11 shape: %s\n",
              reproduced ? "REPRODUCED" : "NOT reproduced");
  return reproduced ? 0 : 1;
}
