#!/usr/bin/env python3
"""Diff two BENCH_*.json artifact sets and flag per-op perf regressions.

Usage:
    bench/compare.py BASELINE_DIR CURRENT_DIR [options]

Each directory must hold BENCH_*.json artifacts produced by bench/run_all.sh.
Artifacts are matched by their "bench" field; within a matched pair, every op
present in both "ops" maps is compared by ns_per_call. An op that got more
than --threshold slower (default 20%) is a regression and the script exits 1.

Guards against noise and apples-to-oranges comparisons:
  * ops whose baseline total_ns is below --min-total-ns (default 1 ms) are
    informational only — their timings are dominated by clock granularity;
  * with --warn-only-on-cpu-mismatch, regressions only warn (exit 0) when
    the two artifact sets were produced on different CPU models or build
    types, since absolute nanoseconds are not comparable across machines.

Memory is compared too: each artifact's "rss" map (peak-RSS snapshots and
bytes-per-device figures from `OPRSS` lines) is diffed by label, and growth
beyond --rss-threshold (default 10%) is warned about. RSS warnings never
fail the run — resident-set numbers depend on allocator behavior and what
ran earlier in the process, so they are a trend signal, not a gate.

Wall_ms is reported for context but never gates: it includes process startup
and is far noisier than the per-op timings.
"""

import argparse
import glob
import json
import os
import sys


def load_artifacts(directory):
    docs = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping unreadable artifact {path}: {error}",
                  file=sys.stderr)
            continue
        name = doc.get("bench")
        if name:
            docs[name] = doc
    return docs


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline_dir")
    parser.add_argument("current_dir")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional per-op slowdown that fails "
                             "(default: 0.20 = 20%%)")
    parser.add_argument("--min-total-ns", type=int, default=1_000_000,
                        help="ignore ops whose baseline total_ns is below "
                             "this (default: 1ms)")
    parser.add_argument("--rss-threshold", type=float, default=0.10,
                        help="fractional peak-RSS growth per label that "
                             "draws a warning (default: 0.10 = 10%%; "
                             "warnings never fail the run)")
    parser.add_argument("--warn-only-on-cpu-mismatch", action="store_true",
                        help="exit 0 despite regressions when baseline and "
                             "current ran on different CPU models or build "
                             "types")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="also fail when a baseline op or bench is "
                             "absent from the current run (default: loud "
                             "warning only, since op renames are legitimate "
                             "when the baseline is refreshed in the same "
                             "change)")
    args = parser.parse_args()

    baseline = load_artifacts(args.baseline_dir)
    current = load_artifacts(args.current_dir)
    if not baseline:
        print(f"error: no BENCH_*.json artifacts in {args.baseline_dir}",
              file=sys.stderr)
        return 2
    if not current:
        print(f"error: no BENCH_*.json artifacts in {args.current_dir}",
              file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: artifact sets share no bench names", file=sys.stderr)
        return 2

    def environment(docs):
        cpus = {d.get("cpu_model", "unknown") for d in docs.values()}
        builds = {d.get("build_type", "unknown") for d in docs.values()}
        return cpus, builds

    base_cpus, base_builds = environment(baseline)
    cur_cpus, cur_builds = environment(current)
    comparable = base_cpus == cur_cpus and base_builds == cur_builds
    if not comparable:
        print(f"note: environments differ (baseline cpu={sorted(base_cpus)} "
              f"build={sorted(base_builds)}; current cpu={sorted(cur_cpus)} "
              f"build={sorted(cur_builds)}); absolute timings are not "
              f"directly comparable")

    # Coverage shrink is a gate-evasion vector: an op that disappears (or a
    # whole bench that stops running) takes its regression check with it, so
    # losses versus the baseline are always reported, never skipped silently.
    missing = [f"bench {name}" for name in sorted(set(baseline) - set(current))]
    regressions = []
    speedups = []
    rss_warnings = []
    compared = 0
    rss_compared = 0
    for name in shared:
        base_ops = baseline[name].get("ops", {})
        cur_ops = current[name].get("ops", {})
        for op in sorted(set(base_ops) - set(cur_ops)):
            missing.append(f"op {name}/{op}")
        base_wall = baseline[name].get("wall_ms")
        cur_wall = current[name].get("wall_ms")
        if base_wall and cur_wall:
            delta = (cur_wall - base_wall) / base_wall
            print(f"{name}: wall {base_wall} ms -> {cur_wall} ms "
                  f"({delta:+.0%} vs baseline, informational)")
        for op in sorted(set(base_ops) & set(cur_ops)):
            base_ns = base_ops[op].get("ns_per_call", 0.0)
            cur_ns = cur_ops[op].get("ns_per_call", 0.0)
            if base_ns <= 0:
                continue
            compared += 1
            ratio = cur_ns / base_ns
            marker = ""
            gated = base_ops[op].get("total_ns", 0) >= args.min_total_ns
            if ratio > 1.0 + args.threshold and gated:
                marker = "  <-- REGRESSION"
                regressions.append((name, op, base_ns, cur_ns, ratio))
            elif not gated:
                marker = "  (below --min-total-ns, informational)"
            if gated and ratio < 1.0 / 1.05:
                speedups.append((name, op, 1.0 / ratio))
            print(f"  {name}/{op}: {base_ns / 1e3:.1f} us -> "
                  f"{cur_ns / 1e3:.1f} us ({ratio - 1.0:+.0%}){marker}")
        # Memory trend: peak-RSS labels shared by both artifacts. Growth
        # beyond --rss-threshold warns; shrink and small drift print quietly.
        base_rss = baseline[name].get("rss", {})
        cur_rss = current[name].get("rss", {})
        for label in sorted(set(base_rss) - set(cur_rss)):
            missing.append(f"rss {name}/{label}")
        for label in sorted(set(base_rss) & set(cur_rss)):
            base_bytes = base_rss[label].get("peak_rss_bytes", 0)
            cur_bytes = cur_rss[label].get("peak_rss_bytes", 0)
            if base_bytes <= 0:
                continue
            rss_compared += 1
            ratio = cur_bytes / base_bytes
            marker = ""
            if ratio > 1.0 + args.rss_threshold:
                marker = "  <-- RSS GROWTH (warning)"
                rss_warnings.append((name, label, base_bytes, cur_bytes, ratio))
            print(f"  {name}/rss/{label}: {base_bytes / 2**20:.1f} MiB -> "
                  f"{cur_bytes / 2**20:.1f} MiB ({ratio - 1.0:+.0%}){marker}")

    # Summary reports per-op speedup factors, not just pass/fail: the wins
    # are as much a part of the perf trajectory as the regressions.
    speedups.sort(key=lambda entry: -entry[2])
    if speedups:
        shown = ", ".join(f"{name}/{op} {factor:.1f}x"
                          for name, op, factor in speedups[:8])
        if len(speedups) > 8:
            shown += f" (+{len(speedups) - 8} more)"
        speedup_note = f"speedups: {shown}"
    else:
        speedup_note = "speedups: none >= 1.05x"
    print(f"\ncompared {compared} ops and {rss_compared} rss labels across "
          f"{len(shared)} benches; {len(regressions)} regression(s) beyond "
          f"{args.threshold:.0%}; {speedup_note}")
    if rss_warnings:
        print(f"warning: {len(rss_warnings)} rss label(s) grew beyond "
              f"{args.rss_threshold:.0%} (memory trend, not a gate):",
              file=sys.stderr)
        for name, label, base_bytes, cur_bytes, ratio in rss_warnings:
            print(f"  {name}/rss/{label}: {base_bytes / 2**20:.1f} MiB -> "
                  f"{cur_bytes / 2**20:.1f} MiB ({ratio - 1.0:+.0%})",
                  file=sys.stderr)
    if missing:
        print(f"warning: {len(missing)} baseline entr(y/ies) absent from the "
              f"current run — their regression gates did not run:",
              file=sys.stderr)
        for entry in missing:
            print(f"  missing {entry}", file=sys.stderr)
        if args.fail_on_missing:
            return 1
    if regressions:
        for name, op, base_ns, cur_ns, ratio in regressions:
            print(f"  {name}/{op}: {base_ns / 1e3:.1f} us -> "
                  f"{cur_ns / 1e3:.1f} us ({ratio - 1.0:+.0%})",
                  file=sys.stderr)
        if args.warn_only_on_cpu_mismatch and not comparable:
            print("environments differ; treating regressions as warnings",
                  file=sys.stderr)
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
