// Million-device memory-plane scale ladder (10k → 100k → 1M devices).
//
// Two planes, each climbed rung by rung with peak-RSS snapshots:
//
//  1. Fleet-state plane: PhoneMgr over the struct-of-arrays FleetStore.
//     Registers the whole rung, times registration, idle counting and the
//     O(log n) unregister/re-register churn path, and reports resident
//     bytes per device from the peak-RSS delta.
//
//  2. Engine payload plane: a real FlEngine run per rung with a fixed
//     1000-participant cohort, arena-pooled payload blobs
//     (reclaim_payload_blobs) and the decoded payload plane. The hard gate
//     is bit-identical FlRunResult across shard widths 1/2/4/8 at every
//     rung, plus fp32 reclaim == fp32 no-reclaim (arena recycling must not
//     change results) and width-invariance of the fp16/int8 codecs. Codec
//     byte accounting gates the wire-size reductions: per-update encoded
//     size int8 >= 3.9x and fp16 >= 1.9x smaller than fp32, confirmed by
//     measured BlobStore::bytes_written ratios.
//
// The 1M rung allocates roughly a GB and is opt-in: SIMDC_BENCH_1M=1.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"
#include "device/fleet.h"
#include "ml/lr_model.h"
#include "phonemgr/phone_mgr.h"
#include "sim/event_loop.h"

namespace {

using namespace simdc;

constexpr std::uint32_t kHashDim = 1u << 10;

bool Run1mRung() {
  const char* env = std::getenv("SIMDC_BENCH_1M");
  return env != nullptr && std::string(env) != "0" && std::string(env) != "";
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void RecordOp(const std::string& op, double seconds) {
  bench::OpTimings::Instance().Record(
      op, static_cast<std::uint64_t>(seconds * 1e9));
}

// --- Plane 1: SoA fleet state ---------------------------------------------

bool FleetRung(std::size_t n) {
  sim::EventLoop loop;
  device::PhoneMgr mgr(loop);
  // Half local / half MSP, split evenly across grades, so both localities
  // and both grade free-lists carry real weight at every rung.
  auto specs = device::MakeLocalFleet(n / 4, n / 4, /*seed=*/7, /*first_id=*/1);
  auto msp = device::MakeMspFleet(n / 4, n - 3 * (n / 4), /*seed=*/8,
                                  /*first_id=*/n + 1);
  specs.insert(specs.end(), msp.begin(), msp.end());

  const std::uint64_t rss_before = bench::PeakRssBytes();
  auto start = std::chrono::steady_clock::now();
  mgr.RegisterFleet(specs);
  const double register_s = SecondsSince(start);
  RecordOp("fleet_register_" + std::to_string(n), register_s);
  const std::uint64_t rss_after = bench::PeakRssBytes();
  bench::OpRss::Instance().Record("fleet_rung_" + std::to_string(n),
                                  rss_after);
  const std::uint64_t delta =
      rss_after > rss_before ? rss_after - rss_before : 0;
  const double bytes_per_device = static_cast<double>(delta) / n;
  bench::OpRss::Instance().Record(
      "fleet_bytes_per_device_" + std::to_string(n),
      static_cast<std::uint64_t>(bytes_per_device));

  bool ok = mgr.TotalPhones() == specs.size();
  const std::size_t idle_before = mgr.CountIdle(device::DeviceGrade::kHigh) +
                                  mgr.CountIdle(device::DeviceGrade::kLow);
  ok = ok && idle_before == specs.size();

  // Churn: unregister a 1000-phone slice (O(log n) each — tombstones, no
  // index rebuild), then re-register it and check the counts knit back.
  const std::size_t churn = std::min<std::size_t>(1000, n / 2);
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < churn; ++i) {
    ok = ok && mgr.UnregisterPhone(specs[i].id).ok();
  }
  const double unregister_s = SecondsSince(start);
  RecordOp("fleet_unregister_1k_of_" + std::to_string(n), unregister_s);
  ok = ok && mgr.TotalPhones() == specs.size() - churn;
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < churn; ++i) {
    mgr.RegisterPhone(specs[i]);
  }
  RecordOp("fleet_reregister_1k_of_" + std::to_string(n),
           SecondsSince(start));
  ok = ok && mgr.TotalPhones() == specs.size();

  std::printf("%10zu %12.3f %14.3f %16.1f %10s\n", n, register_s,
              unregister_s * 1e3, bytes_per_device, ok ? "yes" : "NO");
  return ok;
}

// --- Plane 2: engine payload ladder ---------------------------------------

struct LadderRun {
  core::FlRunResult result;
  std::size_t bytes_written = 0;
  std::size_t arena_blocks_created = 0;
  std::size_t arena_blocks_recycled = 0;
  double wall_s = 0.0;
};

LadderRun TimedLadderRun(
    const data::FederatedDataset& dataset, std::size_t shards,
    ml::PayloadCodec codec, bool reclaim,
    cloud::AggregatePlane agg_plane = cloud::AggregatePlane::kPartialSum) {
  sim::EventLoop loop;
  core::FlExperimentConfig config;
  config.rounds = 2;
  config.train.learning_rate = 0.05;
  config.train.epochs = 1;
  config.logical_fraction = 1.0;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(60.0);
  config.seed = 2026;
  config.parallelism = 4;
  // Fixed cohort: payload working-set memory stays rung-invariant while
  // the fleet-scale structures (dataset, selection) climb with the rung.
  config.participants_per_round = 1000;
  // Width-invariant regime (see FlExperimentConfig::shards).
  config.strategy = flow::RealtimeAccumulated{
      {1}, 0.1, flow::kShardWidthInvariantCapacity};
  config.shards = shards;
  config.decode_plane = flow::DecodePlane::kDecoded;
  config.aggregate_plane = agg_plane;
  config.payload_codec = codec;
  config.reclaim_payload_blobs = reclaim;
  LadderRun out;
  const auto start = std::chrono::steady_clock::now();
  core::FlEngine engine(loop, dataset, config);
  out.result = engine.Run();
  out.wall_s = SecondsSince(start);
  out.bytes_written = engine.storage().bytes_written();
  out.arena_blocks_created = engine.storage().arena_blocks_created();
  out.arena_blocks_recycled = engine.storage().arena_blocks_recycled();
  return out;
}

bool IdenticalRuns(const core::FlRunResult& a, const core::FlRunResult& b) {
  bool identical = a.final_weights == b.final_weights &&
                   a.final_bias == b.final_bias &&
                   a.messages_dropped == b.messages_dropped &&
                   a.rounds.size() == b.rounds.size();
  for (std::size_t r = 0; identical && r < a.rounds.size(); ++r) {
    identical = a.rounds[r].time == b.rounds[r].time &&
                a.rounds[r].clients == b.rounds[r].clients &&
                a.rounds[r].samples == b.rounds[r].samples;
  }
  return identical;
}

bool EngineRung(std::size_t n) {
  data::SynthConfig data_config;
  data_config.num_devices = n;
  data_config.records_per_device_mean = 2;
  data_config.num_test_devices = 20;
  data_config.hash_dim = kHashDim;
  data_config.seed = 5150 + n;
  const auto gen_start = std::chrono::steady_clock::now();
  const auto dataset = data::GenerateSyntheticAvazu(data_config);
  RecordOp("ladder_datagen_" + std::to_string(n), SecondsSince(gen_start));

  const std::string rung = std::to_string(n);
  bool ok = true;

  // Shard-width ladder at fp32 + reclaim: the hard bit-identity gate.
  const LadderRun ref =
      TimedLadderRun(dataset, 1, ml::PayloadCodec::kFp32, /*reclaim=*/true);
  RecordOp("ladder_" + rung + "_shards_1", ref.wall_s);
  std::printf("%10zu %8s %8zu %10.3f %12s %14zu %14zu\n", n, "fp32",
              std::size_t{1}, ref.wall_s, "-", ref.arena_blocks_created,
              ref.arena_blocks_recycled);
  for (const std::size_t shards :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const LadderRun run = TimedLadderRun(dataset, shards,
                                         ml::PayloadCodec::kFp32, true);
    RecordOp("ladder_" + rung + "_shards_" + std::to_string(shards),
             run.wall_s);
    const bool identical = IdenticalRuns(run.result, ref.result);
    ok = ok && identical;
    std::printf("%10zu %8s %8zu %10.3f %12s %14zu %14zu\n", n, "fp32",
                shards, run.wall_s, identical ? "yes" : "NO",
                run.arena_blocks_created, run.arena_blocks_recycled);
  }

  // Aggregate-plane honesty: the rung default above is the partial-sum
  // plane; rerunning the widest rung on the legacy inline-Add plane must
  // reproduce the same bits (the cascaded accumulator is order-invariant,
  // so staging + lane flushes are invisible at the result level).
  const LadderRun legacy_agg = TimedLadderRun(
      dataset, 8, ml::PayloadCodec::kFp32, /*reclaim=*/true,
      cloud::AggregatePlane::kLegacy);
  RecordOp("ladder_" + rung + "_legacy_agg_shards_8", legacy_agg.wall_s);
  const bool plane_identical = IdenticalRuns(legacy_agg.result, ref.result);
  ok = ok && plane_identical;
  std::printf("%10zu %8s %8zu %10.3f %12s %14zu %14zu  (legacy agg)\n", n,
              "fp32", std::size_t{8}, legacy_agg.wall_s,
              plane_identical ? "yes" : "NO", legacy_agg.arena_blocks_created,
              legacy_agg.arena_blocks_recycled);

  // Arena honesty: recycling payload blobs each round must not change the
  // run (no stragglers here: delays are a few seconds vs a 60 s period).
  const LadderRun keep =
      TimedLadderRun(dataset, 1, ml::PayloadCodec::kFp32, /*reclaim=*/false);
  const bool reclaim_identical = IdenticalRuns(keep.result, ref.result);
  ok = ok && reclaim_identical;
  std::printf("%10zu %8s %8zu %10.3f %12s %14zu %14zu  (no reclaim)\n", n,
              "fp32", std::size_t{1}, keep.wall_s,
              reclaim_identical ? "yes" : "NO", keep.arena_blocks_created,
              keep.arena_blocks_recycled);

  // Quantized codecs: width-invariant among themselves, and smaller on the
  // wire by the advertised factors.
  for (const auto codec : {ml::PayloadCodec::kFp16, ml::PayloadCodec::kInt8}) {
    const LadderRun narrow = TimedLadderRun(dataset, 1, codec, true);
    const LadderRun wide = TimedLadderRun(dataset, 4, codec, true);
    const bool identical = IdenticalRuns(narrow.result, wide.result);
    ok = ok && identical;
    RecordOp("ladder_" + rung + "_" + ml::ToString(codec) + "_shards_1",
             narrow.wall_s);
    const double measured_ratio =
        narrow.bytes_written > 0
            ? static_cast<double>(ref.bytes_written) / narrow.bytes_written
            : 0.0;
    const double floor = codec == ml::PayloadCodec::kInt8 ? 3.5 : 1.8;
    const bool bytes_ok = measured_ratio >= floor;
    ok = ok && bytes_ok;
    std::printf("%10zu %8s %8s %10.3f %12s   bytes_written %.2fx smaller %s\n",
                n, ml::ToString(codec), "1+4", narrow.wall_s + wide.wall_s,
                identical ? "yes" : "NO", measured_ratio,
                bytes_ok ? "(ok)" : "(BELOW FLOOR)");
  }

  bench::OpRss::Instance().RecordPeakNow("ladder_rung_" + rung);
  return ok;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 8 extension — million-device memory plane (10k -> 100k -> 1M)");
  std::vector<std::size_t> rungs = {10'000, 100'000};
  if (Run1mRung()) {
    rungs.push_back(1'000'000);
  } else {
    std::printf("1M rung skipped (set SIMDC_BENCH_1M=1 to enable)\n");
  }

  bench::PrintHeader("Fleet-state plane: SoA FleetStore registration/churn");
  std::printf("%10s %12s %14s %16s %10s\n", "phones", "register s",
              "unreg 1k (ms)", "bytes/device", "ok");
  bench::PrintRule();
  bool fleet_ok = true;
  for (const std::size_t n : rungs) fleet_ok = fleet_ok && FleetRung(n);
  bench::PrintRule();
  std::printf("Fleet counts consistent across register/churn: %s\n",
              fleet_ok ? "PASS" : "FAIL");

  // Per-update wire sizes are a pure function of the model dimension; gate
  // the advertised codec reductions exactly before the measured runs.
  const ml::LrModel probe(kHashDim);
  const double fp32_size =
      static_cast<double>(probe.EncodedSize(ml::PayloadCodec::kFp32));
  const double fp16_ratio =
      fp32_size / probe.EncodedSize(ml::PayloadCodec::kFp16);
  const double int8_ratio =
      fp32_size / probe.EncodedSize(ml::PayloadCodec::kInt8);
  const bool codec_sizes_ok = int8_ratio >= 3.9 && fp16_ratio >= 1.9;
  std::printf(
      "\nPer-update encoded size (dim=%u): fp32 %zu B, fp16 %zu B (%.2fx), "
      "int8 %zu B (%.2fx): %s\n",
      kHashDim, probe.EncodedSize(ml::PayloadCodec::kFp32),
      probe.EncodedSize(ml::PayloadCodec::kFp16), fp16_ratio,
      probe.EncodedSize(ml::PayloadCodec::kInt8), int8_ratio,
      codec_sizes_ok ? "PASS (int8 >= 3.9x, fp16 >= 1.9x)" : "FAIL");

  bench::PrintHeader(
      "Engine payload plane: bit-identity ladder (1000-device cohort)");
  std::printf("%10s %8s %8s %10s %12s %14s %14s\n", "devices", "codec",
              "shards", "wall s", "identical", "arena created",
              "arena recycled");
  bench::PrintRule();
  bool engine_ok = true;
  for (const std::size_t n : rungs) engine_ok = engine_ok && EngineRung(n);
  bench::PrintRule();
  std::printf(
      "Bit-identical across shard widths 1/2/4/8, reclaim on/off, and codec\n"
      "width pairs at every rung: %s\n",
      engine_ok ? "REPRODUCED" : "NOT reproduced");

  bench::EmitOpTimings();
  return fleet_ok && codec_sizes_ok && engine_ok ? 0 : 1;
}
