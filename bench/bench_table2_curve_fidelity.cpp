// Reproduces Table II: "Similarity between user-defined traffic curves
// with DeviceFlow actual dispatch strategies."
//
// For each user-defined curve — N(0,1), N(0,2) on [-4,4]; sin(t)+1,
// cos(t)+1 on [0,6π]; 2^t, 10^t on [0,3] — run the full DeviceFlow
// time-interval pipeline and compute the Pearson correlation between the
// per-slot actual dispatch amounts and the curve. The paper reports
// r > 0.99 in all cases.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "flow/device_flow.h"
#include "flow/rate_functions.h"
#include "sim/event_loop.h"

int main() {
  using namespace simdc;
  bench::PrintHeader(
      "Table II — similarity between user curves and actual dispatch");

  struct Case {
    flow::RateFunction curve;
    const char* domain;
  };
  const Case cases[] = {
      {flow::NormalCurve(1.0), "[-4, 4]"},
      {flow::NormalCurve(2.0), "[-4, 4]"},
      {flow::SinPlusOne(), "[0, 6pi]"},
      {flow::CosPlusOne(), "[0, 6pi]"},
      {flow::TwoPowT(), "[0, 3]"},
      {flow::TenPowT(), "[0, 3]"},
  };

  std::printf("%-22s %-10s %s\n", "User-defined curve", "Domain",
              "Correlation coefficient");
  bench::PrintRule();

  bool all_above = true;
  for (const auto& test_case : cases) {
    sim::EventLoop loop;
    flow::DeviceFlow device_flow(loop);

    // Collect the executed dispatch schedule (batch time, batch size).
    flow::TimeIntervalDispatch strategy;
    strategy.rate = test_case.curve;
    strategy.interval = Minutes(1.0);
    if (!device_flow.ConfigureTask(TaskId(1), strategy, nullptr).ok()) {
      return 1;
    }
    const std::size_t total = 20000;
    for (std::size_t i = 0; i < total; ++i) {
      flow::Message m;
      m.id = MessageId(i + 1);
      m.task = TaskId(1);
      if (!device_flow.OnMessage(std::move(m)).ok()) return 1;
    }
    if (!device_flow.OnRoundEnd(TaskId(1), 0).ok()) return 1;
    loop.Run();

    // Correlate each executed batch with the curve value at its time
    // (Table II's methodology: actual dispatch amounts vs f(t)).
    const auto& batches =
        device_flow.FindDispatcher(TaskId(1))->stats().batches;
    std::vector<double> actual, expected;
    for (const auto& [when, amount] : batches) {
      actual.push_back(static_cast<double>(amount));
      const double progress =
          ToSeconds(when) / ToSeconds(strategy.interval);
      expected.push_back(test_case.curve(
          test_case.curve.domain_lo +
          test_case.curve.domain_width() * progress));
    }
    const double r = PearsonCorrelation(actual, expected);
    all_above = all_above && r > 0.99;
    std::printf("%-22s %-10s %.3f\n", test_case.curve.name.c_str(),
                test_case.domain, r);
  }
  bench::PrintRule();
  std::printf("All correlation coefficients exceed 0.99: %s\n",
              all_above ? "REPRODUCED" : "NOT reproduced");
  return all_above ? 0 : 1;
}
