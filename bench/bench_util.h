// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section (§VI), printing the same rows/series. All benches run
// on the virtual clock with fixed seeds, so output is deterministic.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define SIMDC_BENCH_HAS_RUSAGE 1
#endif

namespace simdc::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Renders a compact ASCII sparkline of a series (for figure-style output).
inline std::string Sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double lo = values.empty() ? 0.0 : values[0];
  double hi = lo;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : values) {
    const double norm = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    out += kLevels[static_cast<int>(norm * 7.0 + 0.5)];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-op wall-clock timings. Benches record named hot-path operations and
// emit machine-readable `OPTIME <op> <calls> <total_ns>` lines on exit;
// run_all.sh folds them into the BENCH_*.json artifacts as an "ops" map, and
// bench/compare.py diffs those per-op numbers between artifact sets. This is
// what makes kernel-level speedups (not just end-to-end wall_ms) visible in
// the perf trajectory. Not thread-safe: record from the main thread only.
// ---------------------------------------------------------------------------

class OpTimings {
 public:
  static OpTimings& Instance() {
    static OpTimings timings;
    return timings;
  }

  void Record(const std::string& op, std::uint64_t total_ns,
              std::uint64_t calls = 1) {
    Entry& entry = ops_[op];
    entry.calls += calls;
    entry.total_ns += total_ns;
  }

  /// Prints one OPTIME line per recorded op (sorted by name, so output
  /// layout is deterministic even though the timings are not).
  void Emit() const {
    for (const auto& [op, entry] : ops_) {
      std::printf("OPTIME %s %llu %llu\n", op.c_str(),
                  static_cast<unsigned long long>(entry.calls),
                  static_cast<unsigned long long>(entry.total_ns));
    }
  }

 private:
  struct Entry {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Entry> ops_;
};

/// Times a scope and records it under `op` on destruction.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(std::string op)
      : op_(std::move(op)), start_(std::chrono::steady_clock::now()) {}
  ~ScopedOpTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    OpTimings::Instance().Record(
        op_, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                     .count()));
  }
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  std::string op_;
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Peak-RSS accounting. Benches snapshot the process's high-water resident
// set at interesting points (after each scale-ladder rung, say) and emit
// `OPRSS <label> <bytes>` lines next to the OPTIME ones; run_all.sh folds
// them into the BENCH_*.json artifacts as an "rss" map and bench/compare.py
// warns when a label's bytes grow more than its --rss-threshold between
// artifact sets. Peak RSS is monotone over a process's life, so a label
// records the high-water mark *as of* that point — attribute per-phase
// memory by snapshotting in ascending-footprint order and diffing.
// ---------------------------------------------------------------------------

/// Peak resident set size of this process in bytes via getrusage; 0 when
/// the platform offers no rusage.
inline std::uint64_t PeakRssBytes() {
#if defined(SIMDC_BENCH_HAS_RUSAGE)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Named byte-quantity registry (peak-RSS snapshots, bytes-per-device
/// figures). Same-label records max-merge, matching peak semantics.
class OpRss {
 public:
  static OpRss& Instance() {
    static OpRss rss;
    return rss;
  }

  void Record(const std::string& label, std::uint64_t bytes) {
    std::uint64_t& slot = labels_[label];
    if (bytes > slot) slot = bytes;
  }

  /// Records the current process peak RSS under `label`.
  void RecordPeakNow(const std::string& label) {
    Record(label, PeakRssBytes());
  }

  /// One OPRSS line per label, sorted for deterministic layout.
  void Emit() const {
    for (const auto& [label, bytes] : labels_) {
      std::printf("OPRSS %s %llu\n", label.c_str(),
                  static_cast<unsigned long long>(bytes));
    }
  }

 private:
  std::map<std::string, std::uint64_t> labels_;
};

/// Emits every recorded OPTIME line plus the OPRSS lines, always including
/// a `process_peak` RSS stamp so each artifact carries a memory figure even
/// when the bench recorded no explicit snapshots.
inline void EmitOpTimings() {
  OpTimings::Instance().Emit();
  OpRss::Instance().RecordPeakNow("process_peak");
  OpRss::Instance().Emit();
}

}  // namespace simdc::bench
