// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section (§VI), printing the same rows/series. All benches run
// on the virtual clock with fixed seeds, so output is deterministic.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace simdc::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Renders a compact ASCII sparkline of a series (for figure-style output).
inline std::string Sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double lo = values.empty() ? 0.0 : values[0];
  double hi = lo;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : values) {
    const double norm = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    out += kLevels[static_cast<int>(norm * 7.0 + 0.5)];
  }
  return out;
}

}  // namespace simdc::bench
