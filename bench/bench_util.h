// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section (§VI), printing the same rows/series. All benches run
// on the virtual clock with fixed seeds, so output is deterministic.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace simdc::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Renders a compact ASCII sparkline of a series (for figure-style output).
inline std::string Sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double lo = values.empty() ? 0.0 : values[0];
  double hi = lo;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : values) {
    const double norm = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    out += kLevels[static_cast<int>(norm * 7.0 + 0.5)];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-op wall-clock timings. Benches record named hot-path operations and
// emit machine-readable `OPTIME <op> <calls> <total_ns>` lines on exit;
// run_all.sh folds them into the BENCH_*.json artifacts as an "ops" map, and
// bench/compare.py diffs those per-op numbers between artifact sets. This is
// what makes kernel-level speedups (not just end-to-end wall_ms) visible in
// the perf trajectory. Not thread-safe: record from the main thread only.
// ---------------------------------------------------------------------------

class OpTimings {
 public:
  static OpTimings& Instance() {
    static OpTimings timings;
    return timings;
  }

  void Record(const std::string& op, std::uint64_t total_ns,
              std::uint64_t calls = 1) {
    Entry& entry = ops_[op];
    entry.calls += calls;
    entry.total_ns += total_ns;
  }

  /// Prints one OPTIME line per recorded op (sorted by name, so output
  /// layout is deterministic even though the timings are not).
  void Emit() const {
    for (const auto& [op, entry] : ops_) {
      std::printf("OPTIME %s %llu %llu\n", op.c_str(),
                  static_cast<unsigned long long>(entry.calls),
                  static_cast<unsigned long long>(entry.total_ns));
    }
  }

 private:
  struct Entry {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Entry> ops_;
};

/// Times a scope and records it under `op` on destruction.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(std::string op)
      : op_(std::move(op)), start_(std::chrono::steady_clock::now()) {}
  ~ScopedOpTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    OpTimings::Instance().Record(
        op_, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                     .count()));
  }
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  std::string op_;
  std::chrono::steady_clock::time_point start_;
};

inline void EmitOpTimings() { OpTimings::Instance().Emit(); }

}  // namespace simdc::bench
