// Reproduces Table I: "Measurement of physical performance metrics during
// simulation."
//
// Setup (§VI-B1): 500 High + 500 Low grade simulated devices; 5 physical
// benchmarking devices per grade used exclusively for training and
// performance measurement. PhoneMgr samples the benchmarking phones over
// the five APK stages through the ADB pipeline and uploads to the cloud
// database; we report the per-stage average energy (mAh), duration (min)
// and communication (KB), as in the paper.
//
// Paper reference values (High / Low):
//   stage 1 no APK:       0.24 / 1.71 mAh, 0.25 min
//   stage 2 APK launch:   0.51 / 1.80 mAh, 0.25 min
//   stage 3 Training:     0.18 / 0.66 mAh, 0.27 / 0.36 min, 33.10 KB
//   stage 4 Post-train:   0.37 / 1.65 mAh, 0.25 min
//   stage 5 Closure:      0.44 / 1.82 mAh, 0.25 min
#include <cstdio>

#include "bench_util.h"
#include "cloud/database.h"
#include "common/string_util.h"
#include "device/fleet.h"
#include "phonemgr/phone_mgr.h"
#include "sim/event_loop.h"

namespace {

using namespace simdc;

struct GradeSetup {
  device::DeviceGrade grade;
  double training_s;  // Table I training durations: 0.27 / 0.36 min
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Table I — physical performance metrics during simulation\n"
      "(500 High + 500 Low simulated devices; 5 benchmarking phones per "
      "grade)");

  sim::EventLoop loop;
  device::PhoneMgr mgr(loop);
  // Enough phones for 5 benchmarking devices per grade.
  mgr.RegisterFleet(device::MakeLocalFleet(5, 5, 42, 0));
  mgr.RegisterFleet(device::MakeMspFleet(5, 5, 43, 100));
  cloud::MetricsDatabase db;
  mgr.set_metrics_sink(&db);

  const GradeSetup grades[] = {
      {device::DeviceGrade::kHigh, 0.27 * 60.0},
      {device::DeviceGrade::kLow, 0.36 * 60.0},
  };

  std::vector<std::vector<PhoneId>> benchmarking(2);
  for (std::size_t g = 0; g < 2; ++g) {
    device::PhoneJob job;
    job.task = TaskId(g + 1);
    job.grade = grades[g].grade;
    // The 500 simulated devices per grade run in Logical Simulation (the
    // paper's hybrid setup); the benchmarking phones below are "not reused
    // as computation units" and train one device's workload.
    job.devices_to_simulate = 0;
    job.computing_phones = 0;
    job.benchmarking_phones = 5;
    job.rounds = 1;
    job.pre_idle_s = 15.0;                    // stage 1: 0.25 min
    job.startup_s = 15.0;                     // stage 2: 0.25 min
    job.round_duration_s = grades[g].training_s;  // stage 3
    job.aggregation_wait_s = 15.0;            // stage 4: 0.25 min
    job.download_bytes = 16 * 1024;           // model + config down
    job.upload_bytes = 17 * 1024;             // update + message up
    job.sample_period = Millis(500.0);
    auto handle = mgr.SubmitJob(job);
    if (!handle.ok()) {
      std::fprintf(stderr, "job failed: %s\n",
                   handle.error().ToString().c_str());
      return 1;
    }
    benchmarking[g] = handle->benchmarking;
  }
  // The logical-simulation side of the task (500 devices/grade) finishes
  // on its own cost-model schedule; it does not affect phone measurement.
  loop.Run();

  std::printf("%-6s %-16s %12s %14s %10s\n", "Grade", "Stage", "Power (mAh)",
              "Duration (min)", "Comm (KB)");
  bench::PrintRule();
  for (std::size_t g = 0; g < 2; ++g) {
    const auto stages =
        db.AverageStages(TaskId(g + 1), benchmarking[g]);
    for (const auto& stage : stages) {
      const std::string comm =
          stage.stage == device::ApkStage::kTraining
              ? StrFormat("%.2f", stage.comm_kb)
              : std::string();
      std::printf("%-6s %d %-14s %12.2f %14.2f %10s\n",
                  std::string(ToString(grades[g].grade)).c_str(),
                  static_cast<int>(stage.stage), ToString(stage.stage),
                  stage.energy_mah, stage.duration_min, comm.c_str());
    }
    bench::PrintRule();
  }
  std::printf(
      "Shape checks vs paper: Low-grade energy exceeds High-grade in every\n"
      "stage; training is the cheapest stage per minute; communication\n"
      "(~33 KB) is attributed entirely to the Training stage.\n");
  return 0;
}
